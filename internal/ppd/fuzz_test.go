package ppd

import (
	"strings"
	"testing"

	"probpref/internal/consensus"
)

// Native fuzz targets for the datalog-style query parser (go test -fuzz).
// The invariants are crash-freedom and parse/print round-tripping: a query
// that parses must print to a string that parses back to an equal string
// form. Seed inputs beyond the f.Add calls live under testdata/fuzz.

func FuzzParse(f *testing.F) {
	seeds := []string{
		`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`,
		`Q() <- P(v, d; l; r), C(l, p, M, _, _, _), d = "5/5"`,
		`P(v; m1; m2), P(v; m2; m3), V(v, sex, age)`,
		`R(x, y), x != 3, y <= "z"`,
		`P(_;_;_)`,
		`P(a;b;c), b = 'quoted'`,
		``,
		`,`,
		`P(`,
		`P((`,
		`P(a; b)`,
		`P(a; b; c; d)`,
		`X() <- `,
		`P(-1; -2.5; 0)`,
		"P(\x00;\xff;a)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		// Round-trip: the printed form must parse to the same printed form.
		printed := q.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of %q (from %q) failed: %v", printed, src, err)
		}
		if got := q2.String(); got != printed {
			t.Fatalf("round-trip drift: %q -> %q (from %q)", printed, got, src)
		}
	})
}

// FuzzCompileRequest drives Request.Compile with arbitrary field
// combinations — out-of-range kinds and consensus targets, hostile K /
// BoundEdges / Seed values, malformed queries. The invariants are
// crash-freedom and that every compiled request has a usable cache key.
func FuzzCompileRequest(f *testing.F) {
	const q = `P(_, _; a; b), C(a, _, F, _, _, _)`
	seeds := []struct {
		kind, target int
		k, bound     int
		seed         int64
		query        string
	}{
		{int(KindBool), 0, 0, 0, 0, q},
		{int(KindTopK), 0, 3, 1, 0, q},
		{int(KindConsensus), int(consensus.TargetMAP), 0, 0, 0, q},
		{int(KindConsensus), int(consensus.TargetMedian), 0, 0, 5, q},
		{int(KindConsensus), int(consensus.TargetTopK), 2, 0, 0, q},
		{int(KindConsensus), int(consensus.TargetTopK), -1, 0, 0, q},
		{int(KindConsensus), 9, 0, 0, 0, q},
		{int(KindConsensus), -1, 1 << 30, -5, -1, q},
		{int(KindConsensus), int(consensus.TargetMedian), 7, 2, 0, "P("},
		{-1, int(consensus.TargetMAP), 0, 0, 0, ""},
	}
	for _, s := range seeds {
		f.Add(s.kind, s.target, s.k, s.bound, s.seed, s.query)
	}
	f.Fuzz(func(t *testing.T, kind, target, k, bound int, seed int64, query string) {
		req := Request{
			Kind:            Kind(kind),
			ConsensusTarget: consensus.Target(target),
			K:               k,
			BoundEdges:      bound,
			Seed:            seed,
			Query:           query,
		}
		cr, err := req.Compile()
		if err != nil {
			return
		}
		if cr.Key() == "" {
			t.Fatalf("compiled request %+v has an empty key", req)
		}
	})
}

func FuzzParseUnion(f *testing.F) {
	seeds := []string{
		`P(_,_; a; b), C(a,_,F,_,_,_) | P(_,_; a; b), C(a,D,_,_,JD,_)`,
		`P(_;a;b) | P(_;b;a) | P(_;a;b)`,
		`P(_;a;b), x = "a|b"`,
		`|`,
		`P(_;a;b) |`,
		`'unterminated`,
		`P(_;a;b) | R(x`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		uq, err := ParseUnion(src)
		if err != nil {
			return
		}
		printed := uq.String()
		// The union printer emits a head; ParseUnion splits on top-level '|'
		// only, so the printed form must stay parseable.
		uq2, err := ParseUnion(strings.TrimPrefix(printed, "Q() <- "))
		if err != nil {
			t.Fatalf("reparse of %q (from %q) failed: %v", printed, src, err)
		}
		if got := uq2.String(); got != printed {
			t.Fatalf("round-trip drift: %q -> %q (from %q)", printed, got, src)
		}
	})
}
