package ppd

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRelationCSVRoundTrip(t *testing.T) {
	db := figure1DB(t)
	var buf bytes.Buffer
	if err := db.ItemRelation.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadRelationCSV("C", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Attrs) != 6 || len(back.Tuples) != 4 {
		t.Fatalf("attrs=%d tuples=%d", len(back.Attrs), len(back.Tuples))
	}
	if back.Tuples[0][0] != "Trump" || back.Tuples[3][5] != "S" {
		t.Fatalf("tuples corrupted: %v", back.Tuples)
	}
}

func TestLoadRelationCSVErrors(t *testing.T) {
	if _, err := LoadRelationCSV("X", strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := LoadRelationCSV("X", strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged CSV accepted")
	}
}

func TestPrefJSONRoundTrip(t *testing.T) {
	db := figure1DB(t)
	orig := db.Prefs["P"]
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPrefJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "P" || back.Sessions.Len() != 3 {
		t.Fatalf("name=%q sessions=%d", back.Name, back.Sessions.Len())
	}
	for i, s := range back.Sessions.All() {
		o := orig.Sessions.At(i)
		if s.Model.Rehash() != o.Model.Rehash() {
			t.Fatalf("session %d model mismatch", i)
		}
		if s.Key[0] != o.Key[0] || s.Key[1] != o.Key[1] {
			t.Fatalf("session %d key mismatch", i)
		}
	}
	// Ann and Dave share a center but not phi; no sharing. Re-serialize a
	// relation with duplicated models and verify instance sharing.
	dup := &PrefRelation{
		Name:         "P2",
		SessionAttrs: []string{"voter", "date"},
		Sessions: SessionSlice{
			orig.Sessions.At(0),
			{Key: []string{"Eve", "5/5"}, Model: orig.Sessions.At(0).Model},
		},
	}
	buf.Reset()
	if err := dup.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err = LoadPrefJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Sessions.At(0).Model != back.Sessions.At(1).Model {
		t.Fatal("identical models not shared after load")
	}
}

func TestLoadPrefJSONErrors(t *testing.T) {
	if _, err := LoadPrefJSON(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	bad := `{"name":"P","session_attrs":["v"],"sessions":[{"key":["a"],"sigma":[0,0],"phi":0.5}]}`
	if _, err := LoadPrefJSON(strings.NewReader(bad)); err == nil {
		t.Error("invalid sigma accepted")
	}
}

func TestExplain(t *testing.T) {
	db := figure1DB(t)
	eng := &Engine{DB: db, Method: MethodAuto}

	// Itemwise two-label query.
	ex, err := eng.Explain(MustParse(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`))
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Itemwise || !ex.AllTwoLabel || ex.Recommended != MethodTwoLabel {
		t.Fatalf("explanation = %+v", ex)
	}
	if ex.LiveSessions != 3 || ex.DistinctGroups != 3 {
		t.Fatalf("live=%d groups=%d", ex.LiveSessions, ex.DistinctGroups)
	}

	// Hard query with grounded variable e.
	ex, err = eng.Explain(MustParse(`P(_, _; c1; c2), C(c1, D, _, _, e, _), C(c2, R, _, _, e, _)`))
	if err != nil {
		t.Fatal(err)
	}
	if ex.Itemwise {
		t.Fatal("Q2 should not be itemwise")
	}
	found := false
	for _, v := range ex.GroundVars {
		if v == "e" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ground vars = %v, want e", ex.GroundVars)
	}
	if ex.MaxUnion != 2 {
		t.Fatalf("max union = %d", ex.MaxUnion)
	}
	out := ex.String()
	for _, want := range []string{"hard (non-itemwise)", "two-label", "grounded vars: e"} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation output missing %q:\n%s", want, out)
		}
	}

	// Chain query recommends relorder.
	ex, err = eng.Explain(MustParse(`P(_, _; c1; c2), P(_, _; c2; c3), C(c1, _, F, _, _, _), C(c2, D, _, _, _, _), C(c3, R, _, _, _, _)`))
	if err != nil {
		t.Fatal(err)
	}
	if ex.AllBipartite || ex.Recommended != MethodRelOrder {
		t.Fatalf("chain explanation = %+v", ex)
	}
}

func TestExplainMatchesEval(t *testing.T) {
	db := figure1DB(t)
	eng := &Engine{DB: db, Method: MethodAuto}
	q := MustParse(`P(_, _; c1; c2), C(c1, D, _, _, e, _), C(c2, R, _, _, e, _)`)
	ex, err := eng.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.LiveSessions != len(res.PerSession) {
		t.Fatalf("explain live=%d, eval sessions=%d", ex.LiveSessions, len(res.PerSession))
	}
	if ex.DistinctGroups != res.Solves {
		t.Fatalf("explain groups=%d, eval solves=%d", ex.DistinctGroups, res.Solves)
	}
	if math.IsNaN(res.Prob) {
		t.Fatal("NaN probability")
	}
}
