package ppd

import (
	"context"
	"fmt"
	"math/rand"

	"probpref/internal/pattern"
)

// Do is the engine's single entry point: it validates the request with
// Compile and answers it according to its Kind. Every per-kind method of
// the engine (Eval, TopK, CountSession, Aggregate, CountDistribution and
// their Ctx/Union variants) is a thin wrapper over Do — see compat.go.
//
// Request.Method and Request.Seed, when set, override the engine's
// configured method and RNG for this call only (the engine itself is not
// mutated); Request.Deadline arms a context deadline on top of ctx. The
// Model field is ignored at this layer: the engine serves whatever database
// it holds, and model routing happens in internal/server.
func (e *Engine) Do(ctx context.Context, req *Request) (*Response, error) {
	cr, err := req.Compile()
	if err != nil {
		return nil, err
	}
	return e.DoCompiled(ctx, cr)
}

// DoCompiled is Do for an already-compiled request; batch planners compile
// once and execute many times (possibly against several engines).
func (e *Engine) DoCompiled(ctx context.Context, cr *CompiledRequest) (*Response, error) {
	eng := e
	if cr.Method != MethodAuto && cr.Method != e.Method {
		clone := *e
		clone.Method = cr.Method
		eng = &clone
	}
	if cr.Seed != 0 {
		if eng == e {
			clone := *e
			eng = &clone
		}
		eng.Rng = rand.New(rand.NewSource(cr.Seed))
	}
	if cr.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cr.Deadline)
		defer cancel()
	}
	switch cr.Kind {
	case KindBool, KindCount:
		res, err := eng.evalUnion(ctx, cr.Union)
		if err != nil {
			return nil, err
		}
		return evalResponse(cr.Kind, res), nil
	case KindTopK:
		top, diag, err := eng.topKUnion(ctx, cr.Union, cr.K, cr.BoundEdges)
		if err != nil {
			return nil, err
		}
		return &Response{
			Kind:      KindTopK,
			Top:       top,
			Diag:      diag,
			Solves:    diag.ExactSolves + diag.BoundSolves,
			CacheHits: diag.CacheHits,
			Plan:      diag.Plan,
		}, nil
	case KindAggregate:
		agg, err := eng.aggregateQuery(ctx, cr.Union.Disjuncts[0], cr.AggRel, cr.AggAttr)
		if err != nil {
			return nil, err
		}
		return &Response{Kind: KindAggregate, Agg: agg, Count: agg.Count}, nil
	case KindCountDist:
		dist, res, err := eng.countDistUnion(ctx, cr.Union)
		if err != nil {
			return nil, err
		}
		resp := evalResponse(KindCountDist, res)
		resp.Dist = dist
		return resp, nil
	case KindConsensus:
		return eng.consensusUnion(ctx, cr)
	}
	return nil, fmt.Errorf("ppd: unknown kind %v", cr.Kind)
}

// evalResponse builds the unified response of an evaluation-backed kind.
func evalResponse(k Kind, res *EvalResult) *Response {
	return &Response{
		Kind:       k,
		Prob:       res.Prob,
		Count:      res.Count,
		PerSession: res.PerSession,
		Solves:     res.Solves,
		CacheHits:  res.CacheHits,
		Plan:       res.Plan,
	}
}

// evalUnion is the evaluation core shared by every Boolean / Count-Session
// entry point: grounding (plain for a single CQ, merged across disjuncts
// for a union), identical-request grouping, optional parallel solving and
// the Boolean / Count-Session aggregation. A done ctx aborts grounding,
// in-flight solver layers and sampling rounds with ctx's error, and
// MethodAdaptive budgets each group from the ctx deadline.
func (e *Engine) evalUnion(ctx context.Context, uq *UnionQuery) (*EvalResult, error) {
	sessions, ground, err := e.unionGround(uq)
	if err != nil {
		return nil, err
	}
	return e.evalGrounded(ctx, sessions, ground)
}

// topKUnion is the Most-Probable-Session core shared by every topk entry
// point; see evalUnion for the grounding split and TopK for the bound-edge
// semantics.
func (e *Engine) topKUnion(ctx context.Context, uq *UnionQuery, k, boundEdges int) ([]SessionProb, *TopKDiag, error) {
	sessions, ground, err := e.unionGround(uq)
	if err != nil {
		return nil, nil, err
	}
	return e.topKGrounded(ctx, sessions, ground, k, boundEdges)
}

// unionGround builds the session list and grounding function for a union
// query. A single-disjunct union grounds through one grounder directly;
// a true union grounds every disjunct and merges the per-session pattern
// unions into the single equivalent inference request. (GroundSession
// already deduplicates patterns by key, so the two paths agree on
// single-disjunct queries.)
func (e *Engine) unionGround(uq *UnionQuery) (SessionStore, func(*Session) (pattern.Union, error), error) {
	if len(uq.Disjuncts) == 1 {
		g, err := NewGrounder(e.DB, uq.Disjuncts[0])
		if err != nil {
			return nil, nil, err
		}
		return g.Pref().Sessions, func(s *Session) (pattern.Union, error) {
			gq, err := g.GroundSession(s)
			if err != nil {
				return nil, err
			}
			return gq.Union, nil
		}, nil
	}
	grounders, err := UnionGrounders(e.DB, uq)
	if err != nil {
		return nil, nil, err
	}
	return grounders[0].Pref().Sessions, func(s *Session) (pattern.Union, error) {
		return GroundMerged(grounders, s)
	}, nil
}

// countDistUnion is the count-distribution core: it evaluates the union and
// extends the per-session probabilities into the exact Poisson-binomial
// distribution of count(Q); see CountDistFromSessions for the padding
// semantics.
func (e *Engine) countDistUnion(ctx context.Context, uq *UnionQuery) (*CountDistribution, *EvalResult, error) {
	res, err := e.evalUnion(ctx, uq)
	if err != nil {
		return nil, nil, err
	}
	g, err := NewGrounder(e.DB, uq.Disjuncts[0])
	if err != nil {
		return nil, nil, err
	}
	dist, err := CountDistFromSessions(res.PerSession, g.Pref().Sessions.Len())
	if err != nil {
		return nil, nil, err
	}
	return dist, res, nil
}

// CountDistFromSessions builds the exact count(Q) distribution from the
// live per-session probabilities of an evaluation, padding the
// structurally-unsatisfiable sessions (empty grounded union, absent from
// PerSession) with probability zero so the support is the full session
// count of the queried p-relation. It is the shared construction of the
// engine's countdist kind and the service layer's grouped batch path.
func CountDistFromSessions(per []SessionProb, sessions int) (*CountDistribution, error) {
	probs := make([]float64, 0, sessions)
	for _, sp := range per {
		probs = append(probs, sp.Prob)
	}
	for len(probs) < sessions {
		probs = append(probs, 0) // structurally-unsatisfiable sessions
	}
	return NewCountDistribution(probs)
}
