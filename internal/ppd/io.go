package ppd

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"

	"probpref/internal/rank"
	"probpref/internal/rim"
)

// LoadRelationCSV reads an o-relation from CSV: the first record holds the
// attribute names, each following record one tuple.
func LoadRelationCSV(name string, r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("ppd: reading %s: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("ppd: relation %s has no header", name)
	}
	return NewRelation(name, records[0], records[1:])
}

// WriteCSV writes the relation as CSV with a header record.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Attrs); err != nil {
		return err
	}
	for _, t := range r.Tuples {
		if err := cw.Write(t); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// prefJSON is the serialized form of a preference relation: one Mallows
// model per session, centers as item-id sequences.
type prefJSON struct {
	Name         string        `json:"name"`
	SessionAttrs []string      `json:"session_attrs"`
	Sessions     []sessionJSON `json:"sessions"`
}

type sessionJSON struct {
	Key   []string `json:"key"`
	Sigma []int    `json:"sigma"`
	// Phi parameterizes a Mallows session; Phis (when present) a
	// Generalized Mallows session.
	Phi  float64   `json:"phi,omitempty"`
	Phis []float64 `json:"phis,omitempty"`
}

// WriteJSON serializes the p-relation. Mallows and Generalized Mallows
// sessions are supported (general RIM insertion matrices are not
// serialized).
func (p *PrefRelation) WriteJSON(w io.Writer) error {
	out := prefJSON{Name: p.Name, SessionAttrs: p.SessionAttrs}
	for i, s := range p.Sessions.All() {
		sigma := make([]int, s.Model.M())
		for j, it := range s.Model.Reference() {
			sigma[j] = int(it)
		}
		sj := sessionJSON{Key: s.Key, Sigma: sigma}
		switch m := s.Model.(type) {
		case *rim.Mallows:
			sj.Phi = m.Phi
		case *rim.GeneralizedMallows:
			sj.Phis = m.Phis
		default:
			return fmt.Errorf("ppd: session %d: cannot serialize model type %T", i, s.Model)
		}
		out.Sessions = append(out.Sessions, sj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadPrefJSON deserializes a p-relation written by WriteJSON. Sessions
// with identical parameters share one model instance, preserving the
// grouping behavior of the evaluator.
func LoadPrefJSON(r io.Reader) (*PrefRelation, error) {
	var in prefJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("ppd: decoding p-relation: %w", err)
	}
	p := &PrefRelation{Name: in.Name, SessionAttrs: in.SessionAttrs}
	var sessions SessionSlice
	shared := make(map[string]rim.SessionModel)
	for i, s := range in.Sessions {
		sigma := make(rank.Ranking, len(s.Sigma))
		for j, it := range s.Sigma {
			sigma[j] = rank.Item(it)
		}
		var (
			sm  rim.SessionModel
			err error
		)
		if len(s.Phis) > 0 {
			sm, err = rim.NewGeneralizedMallows(sigma, s.Phis)
		} else {
			sm, err = rim.NewMallows(sigma, s.Phi)
		}
		if err != nil {
			return nil, fmt.Errorf("ppd: session %d: %w", i, err)
		}
		if prev, ok := shared[sm.Rehash()]; ok {
			sm = prev
		} else {
			shared[sm.Rehash()] = sm
		}
		sessions = append(sessions, &Session{Key: s.Key, Model: sm})
	}
	p.Sessions = sessions
	return p, nil
}
