package ppd

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"

	"probpref/internal/rank"
	"probpref/internal/rim"
)

// LoadRelationCSV reads an o-relation from CSV: the first record holds the
// attribute names, each following record one tuple.
func LoadRelationCSV(name string, r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("ppd: reading %s: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("ppd: relation %s has no header", name)
	}
	return NewRelation(name, records[0], records[1:])
}

// WriteCSV writes the relation as CSV with a header record.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Attrs); err != nil {
		return err
	}
	for _, t := range r.Tuples {
		if err := cw.Write(t); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// prefJSON is the serialized form of a preference relation: one Mallows
// model per session, centers as item-id sequences.
type prefJSON struct {
	Name         string        `json:"name"`
	SessionAttrs []string      `json:"session_attrs"`
	Sessions     []SessionJSON `json:"sessions"`
}

// SessionJSON is the JSON wire form of one session, shared by the
// p-relation files of ppdgen, the ingest endpoint of the server, and the
// write-ahead-log records of the registry: a center ranking over item ids
// plus Mallows (phi) or Generalized Mallows (phis) dispersion.
type SessionJSON struct {
	// Key holds the session-attribute values, in the p-relation's
	// SessionAttrs order.
	Key []string `json:"key"`
	// Sigma is the center (reference) ranking as item ids.
	Sigma []int `json:"sigma"`
	// Phi parameterizes a Mallows session.
	Phi float64 `json:"phi,omitempty"`
	// Phis, when present, parameterizes a Generalized Mallows session
	// instead (one dispersion per insertion step).
	Phis []float64 `json:"phis,omitempty"`
}

// SessionsJSON converts sessions to their wire form. Mallows and
// Generalized Mallows sessions are supported (general RIM insertion
// matrices are not serialized).
func SessionsJSON(sessions []*Session) ([]SessionJSON, error) {
	out := make([]SessionJSON, 0, len(sessions))
	for i, s := range sessions {
		sigma := make([]int, s.Model.M())
		for j, it := range s.Model.Reference() {
			sigma[j] = int(it)
		}
		sj := SessionJSON{Key: s.Key, Sigma: sigma}
		switch m := s.Model.(type) {
		case *rim.Mallows:
			sj.Phi = m.Phi
		case *rim.GeneralizedMallows:
			sj.Phis = m.Phis
		default:
			return nil, fmt.Errorf("ppd: session %d: cannot serialize model type %T", i, s.Model)
		}
		out = append(out, sj)
	}
	return out, nil
}

// ParseSessionsJSON converts wire-form sessions back to sessions. Sessions
// with identical parameters share one model instance, preserving the
// grouping behavior of the evaluator.
func ParseSessionsJSON(in []SessionJSON) ([]*Session, error) {
	sessions := make([]*Session, 0, len(in))
	shared := make(map[string]rim.SessionModel)
	for i, s := range in {
		sigma := make(rank.Ranking, len(s.Sigma))
		for j, it := range s.Sigma {
			sigma[j] = rank.Item(it)
		}
		var (
			sm  rim.SessionModel
			err error
		)
		if len(s.Phis) > 0 {
			sm, err = rim.NewGeneralizedMallows(sigma, s.Phis)
		} else {
			sm, err = rim.NewMallows(sigma, s.Phi)
		}
		if err != nil {
			return nil, fmt.Errorf("ppd: session %d: %w", i, err)
		}
		if prev, ok := shared[sm.Rehash()]; ok {
			sm = prev
		} else {
			shared[sm.Rehash()] = sm
		}
		sessions = append(sessions, &Session{Key: s.Key, Model: sm})
	}
	return sessions, nil
}

// WriteJSON serializes the p-relation.
func (p *PrefRelation) WriteJSON(w io.Writer) error {
	all := make([]*Session, 0, p.Sessions.Len())
	for _, s := range p.Sessions.All() {
		all = append(all, s)
	}
	sessions, err := SessionsJSON(all)
	if err != nil {
		return err
	}
	out := prefJSON{Name: p.Name, SessionAttrs: p.SessionAttrs, Sessions: sessions}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadPrefJSON deserializes a p-relation written by WriteJSON.
func LoadPrefJSON(r io.Reader) (*PrefRelation, error) {
	var in prefJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("ppd: decoding p-relation: %w", err)
	}
	sessions, err := ParseSessionsJSON(in.Sessions)
	if err != nil {
		return nil, err
	}
	return &PrefRelation{Name: in.Name, SessionAttrs: in.SessionAttrs, Sessions: SessionSlice(sessions)}, nil
}
