package ppd

import "context"

// This file is the engine's compatibility surface: the per-kind entry
// points that predate the unified request/response API, kept as thin
// wrappers over Engine.Do so existing callers (and the facade package)
// keep working unchanged. New code should build a Request and call Do —
// one entry point, every query class — instead of extending this matrix;
// internal/doclint enforces that non-wrapper serving-path code does not
// call these. Results are byte-identical to the Do path: the equivalence
// suite in equivalence_test.go pins that.

// evalVia runs an evaluation-backed request and projects the legacy result.
func (e *Engine) evalVia(ctx context.Context, req *Request) (*EvalResult, error) {
	resp, err := e.Do(ctx, req)
	if err != nil {
		return nil, err
	}
	return resp.EvalResult(), nil
}

// topKVia runs a topk request and projects the legacy result pair.
func (e *Engine) topKVia(ctx context.Context, req *Request) ([]SessionProb, *TopKDiag, error) {
	resp, err := e.Do(ctx, req)
	if err != nil {
		return nil, nil, err
	}
	return resp.Top, resp.Diag, nil
}

// Eval grounds and evaluates the query on every session, computing both the
// Boolean confidence and the Count-Session expectation. With Workers > 1,
// distinct (model, union) groups are solved concurrently.
func (e *Engine) Eval(q *Query) (*EvalResult, error) {
	return e.EvalCtx(context.Background(), q)
}

// EvalCtx is Eval with cancellation and deadline awareness: a done ctx
// aborts grounding, in-flight solver layers and sampling rounds with ctx's
// error, and MethodAdaptive budgets each group from the ctx deadline.
func (e *Engine) EvalCtx(ctx context.Context, q *Query) (*EvalResult, error) {
	return e.evalVia(ctx, &Request{Kind: KindBool, Queries: []*Query{q}})
}

// EvalUnion evaluates a union of conjunctive queries: per session, the
// grounded pattern unions of all disjuncts are merged (deduplicated) and
// solved as one inference request, sharing the engine's solver selection,
// identical-request grouping and parallelism.
func (e *Engine) EvalUnion(uq *UnionQuery) (*EvalResult, error) {
	return e.EvalUnionCtx(context.Background(), uq)
}

// EvalUnionCtx is EvalUnion with cancellation and deadline awareness; see
// EvalCtx.
func (e *Engine) EvalUnionCtx(ctx context.Context, uq *UnionQuery) (*EvalResult, error) {
	return e.evalVia(ctx, &Request{Kind: KindBool, Queries: uq.Disjuncts})
}

// CountSession answers the Count-Session query count(Q): the expected
// number of sessions satisfying Q under possible-world semantics
// (Section 3.2).
func (e *Engine) CountSession(q *Query) (float64, error) {
	return e.CountSessionCtx(context.Background(), q)
}

// CountSessionCtx is CountSession with cancellation and deadline awareness.
func (e *Engine) CountSessionCtx(ctx context.Context, q *Query) (float64, error) {
	res, err := e.evalVia(ctx, &Request{Kind: KindCount, Queries: []*Query{q}})
	if err != nil {
		return 0, err
	}
	return res.Count, nil
}

// MostProbableSession answers top(Q, k) with the 1-edge upper-bound
// optimization; use TopK directly to control the bound edges or force the
// naive strategy.
func (e *Engine) MostProbableSession(q *Query, k int) ([]SessionProb, error) {
	top, _, err := e.TopK(q, k, 1)
	return top, err
}

// TopK answers the Most-Probable-Session query top(Q, k): the k sessions
// satisfying Q with the highest probability (Section 3.2).
//
// With boundEdges == 0 it uses the naive strategy: evaluate every session
// exactly and sort. With boundEdges >= 1 it applies the top-k optimization:
// cheap upper bounds from the hardest boundEdges transitive-closure edges of
// each pattern (Section 4.3.2) prioritize sessions, and exact evaluation
// stops once k sessions are at least as probable as every remaining bound.
func (e *Engine) TopK(q *Query, k int, boundEdges int) ([]SessionProb, *TopKDiag, error) {
	return e.TopKCtx(context.Background(), q, k, boundEdges)
}

// TopKCtx is TopK with cancellation and deadline awareness.
func (e *Engine) TopKCtx(ctx context.Context, q *Query, k int, boundEdges int) ([]SessionProb, *TopKDiag, error) {
	return e.topKVia(ctx, &Request{Kind: KindTopK, Queries: []*Query{q}, K: k, BoundEdges: boundEdges})
}

// TopKUnion answers top(Q, k) for a union of conjunctive queries: per
// session the disjuncts' grounded unions are merged, then the standard
// top-k machinery (including the upper-bound optimization) applies.
func (e *Engine) TopKUnion(uq *UnionQuery, k int, boundEdges int) ([]SessionProb, *TopKDiag, error) {
	return e.TopKUnionCtx(context.Background(), uq, k, boundEdges)
}

// TopKUnionCtx is TopKUnion with cancellation and deadline awareness.
func (e *Engine) TopKUnionCtx(ctx context.Context, uq *UnionQuery, k int, boundEdges int) ([]SessionProb, *TopKDiag, error) {
	return e.topKVia(ctx, &Request{Kind: KindTopK, Queries: uq.Disjuncts, K: k, BoundEdges: boundEdges})
}

// Aggregate evaluates sum/avg of a numeric attribute over the sessions
// satisfying q. The attribute is looked up in the o-relation rel: the row
// whose key (first attribute) equals the session's first key value provides
// the value of attr. Sessions without a matching row or with a non-numeric
// value are skipped.
func (e *Engine) Aggregate(q *Query, rel, attr string) (*AggregateResult, error) {
	return e.AggregateCtx(context.Background(), q, rel, attr)
}

// AggregateCtx is Aggregate with cancellation and deadline awareness.
func (e *Engine) AggregateCtx(ctx context.Context, q *Query, rel, attr string) (*AggregateResult, error) {
	resp, err := e.Do(ctx, &Request{Kind: KindAggregate, Queries: []*Query{q}, AggRel: rel, AggAttr: attr})
	if err != nil {
		return nil, err
	}
	return resp.Agg, nil
}

// CountDistribution evaluates Q on every session and returns the exact
// distribution of count(Q). Sessions whose grounded union is empty can
// never satisfy Q and enter with probability zero, so the support is
// 0..N for N the number of sessions of the queried p-relation.
func (e *Engine) CountDistribution(q *Query) (*CountDistribution, error) {
	return e.countDistVia(context.Background(), &Request{Kind: KindCountDist, Queries: []*Query{q}})
}

// CountDistributionUnion returns the exact Poisson-binomial distribution of
// the number of sessions satisfying the union query (see CountDistribution).
func (e *Engine) CountDistributionUnion(uq *UnionQuery) (*CountDistribution, error) {
	return e.CountDistributionUnionCtx(context.Background(), uq)
}

// CountDistributionUnionCtx is CountDistributionUnion with cancellation and
// deadline awareness.
func (e *Engine) CountDistributionUnionCtx(ctx context.Context, uq *UnionQuery) (*CountDistribution, error) {
	return e.countDistVia(ctx, &Request{Kind: KindCountDist, Queries: uq.Disjuncts})
}

// countDistVia runs a countdist request and projects the distribution.
func (e *Engine) countDistVia(ctx context.Context, req *Request) (*CountDistribution, error) {
	resp, err := e.Do(ctx, req)
	if err != nil {
		return nil, err
	}
	return resp.Dist, nil
}
