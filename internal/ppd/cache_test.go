package ppd

import (
	"sync"
	"testing"
)

// lockedCache is a minimal thread-safe SolveCache for tests.
type lockedCache struct {
	mu   sync.Mutex
	m    map[string]float64
	hits int
	puts int
}

func newLockedCache() *lockedCache { return &lockedCache{m: make(map[string]float64)} }

func (c *lockedCache) Get(key string) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.m[key]
	if ok {
		c.hits++
	}
	return p, ok
}

func (c *lockedCache) Put(key string, p float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	c.m[key] = p
}

func TestEvalWithCacheMatchesUncached(t *testing.T) {
	db := figure1DB(t)
	q, err := Parse(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	if err != nil {
		t.Fatal(err)
	}
	plain := &Engine{DB: db}
	want, err := plain.Eval(q)
	if err != nil {
		t.Fatal(err)
	}

	cache := newLockedCache()
	eng := &Engine{DB: db, Cache: cache}
	cold, err := eng.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Prob != want.Prob || cold.Count != want.Count {
		t.Fatalf("cold cached eval: prob=%v count=%v, want %v/%v", cold.Prob, cold.Count, want.Prob, want.Count)
	}
	if cold.CacheHits != 0 || cold.Solves != want.Solves {
		t.Fatalf("cold eval: solves=%d hits=%d, want solves=%d hits=0", cold.Solves, cold.CacheHits, want.Solves)
	}
	warm, err := eng.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Solves != 0 || warm.CacheHits != want.Solves {
		t.Fatalf("warm eval: solves=%d hits=%d, want 0/%d", warm.Solves, warm.CacheHits, want.Solves)
	}
	if warm.Prob != want.Prob {
		t.Fatalf("warm prob %v != %v", warm.Prob, want.Prob)
	}
}

func TestEvalCacheIgnoredWhenGroupingDisabled(t *testing.T) {
	db := figure1DB(t)
	q, err := Parse(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	if err != nil {
		t.Fatal(err)
	}
	cache := newLockedCache()
	eng := &Engine{DB: db, Cache: cache, DisableGrouping: true}
	if _, err := eng.Eval(q); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Eval(q); err != nil {
		t.Fatal(err)
	}
	if cache.hits != 0 || cache.puts != 0 {
		t.Fatalf("cache used despite DisableGrouping: hits=%d puts=%d", cache.hits, cache.puts)
	}
}

func TestTopKWithCache(t *testing.T) {
	db := figure1DB(t)
	q, err := Parse(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	if err != nil {
		t.Fatal(err)
	}
	plain := &Engine{DB: db}
	want, _, err := plain.TopK(q, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{DB: db, Cache: newLockedCache()}
	if _, _, err := eng.TopK(q, 3, 1); err != nil {
		t.Fatal(err)
	}
	got, diag, err := eng.TopK(q, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if diag.ExactSolves != 0 || diag.CacheHits == 0 {
		t.Fatalf("warm top-k: exact=%d hits=%d", diag.ExactSolves, diag.CacheHits)
	}
	for i := range want {
		if got[i].Prob != want[i].Prob {
			t.Fatalf("rank %d: %v != %v", i, got[i].Prob, want[i].Prob)
		}
	}
}

// TestEvalCacheConcurrentRace hammers Engine.Eval with Workers > 1 and a
// shared SolveCache from many goroutines; run it under -race. Every result
// must match the serial, uncached evaluation (exact method).
func TestEvalCacheConcurrentRace(t *testing.T) {
	db := figure1DB(t)
	queries := []string{
		`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`,
		`P(_, _; c1; c2), C(c1, D, _, _, _, _), C(c2, R, _, _, _, _)`,
	}
	want := make([]float64, len(queries))
	parsed := make([]*Query, len(queries))
	for i, src := range queries {
		q, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		parsed[i] = q
		res, err := (&Engine{DB: db}).Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Prob
	}

	cache := newLockedCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine gets its own engine (Engine is not itself
			// concurrency-safe) but all share one cache.
			eng := &Engine{DB: db, Workers: 4, Cache: cache}
			for i := 0; i < 20; i++ {
				qi := (g + i) % len(parsed)
				res, err := eng.Eval(parsed[qi])
				if err != nil {
					t.Error(err)
					return
				}
				if res.Prob != want[qi] {
					t.Errorf("query %d: prob %v, want %v", qi, res.Prob, want[qi])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if cache.hits == 0 {
		t.Fatal("shared cache was never hit")
	}
}

// TestCacheKeysSeparateMethods: engines with different Methods can share one
// cache without serving each other's results — a rejection-sampling estimate
// must not be returned as another engine's exact answer.
func TestCacheKeysSeparateMethods(t *testing.T) {
	db := figure1DB(t)
	q, err := Parse(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := (&Engine{DB: db}).Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	cache := newLockedCache()
	sampler := &Engine{DB: db, Method: MethodRejection, RejectionN: 50, Cache: cache}
	if _, err := sampler.Eval(q); err != nil {
		t.Fatal(err)
	}
	got, err := (&Engine{DB: db, Method: MethodAuto, Cache: cache}).Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.CacheHits != 0 {
		t.Fatalf("exact engine hit the sampler's cache entries (%d hits)", got.CacheHits)
	}
	if got.Prob != exact.Prob {
		t.Fatalf("exact prob %v contaminated, want %v", got.Prob, exact.Prob)
	}
}
