package ppd

import (
	"strings"
	"testing"
)

func TestParseQ0(t *testing.T) {
	q, err := Parse(`Q() <- P(Ann, "5/5"; Trump; Clinton), P(Ann, "5/5"; Trump; Rubio)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Prefs) != 2 || len(q.Rels) != 0 {
		t.Fatalf("parsed %d prefs, %d rels", len(q.Prefs), len(q.Rels))
	}
	a := q.Prefs[0]
	if a.Rel != "P" || a.Left != C("Trump") || a.Right != C("Clinton") {
		t.Fatalf("atom = %+v", a)
	}
	if a.Session[0] != C("Ann") || a.Session[1] != C("5/5") {
		t.Fatalf("session = %v", a.Session)
	}
}

func TestParseQ1(t *testing.T) {
	q, err := Parse(`Q() <- P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Prefs) != 1 || len(q.Rels) != 2 {
		t.Fatalf("prefs=%d rels=%d", len(q.Prefs), len(q.Rels))
	}
	if q.Prefs[0].Left != V("c1") || q.Prefs[0].Right != V("c2") {
		t.Fatalf("items = %v %v", q.Prefs[0].Left, q.Prefs[0].Right)
	}
	if q.Rels[0].Args[2] != C("F") {
		t.Fatalf("expected constant F, got %v", q.Rels[0].Args[2])
	}
	if q.Rels[0].Args[1].Kind != Wild {
		t.Fatalf("expected wildcard, got %v", q.Rels[0].Args[1])
	}
}

func TestParseComparisons(t *testing.T) {
	q, err := Parse(`P(_, date; c1; c2), C(c1, p, _, age, _, _), date = "5/5", age >= 50, p != R`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Comps) != 3 {
		t.Fatalf("comps = %v", q.Comps)
	}
	if q.Comps[1].Op != ">=" || q.Comps[1].Right != C("50") {
		t.Fatalf("comp = %v", q.Comps[1])
	}
}

func TestParseNumbers(t *testing.T) {
	q, err := Parse(`P(_; 223; 111), M(x, _, year1, _), year1 >= 1990`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Prefs[0].Left != C("223") || q.Prefs[0].Right != C("111") {
		t.Fatalf("items = %v %v", q.Prefs[0].Left, q.Prefs[0].Right)
	}
}

func TestParseHeadless(t *testing.T) {
	if _, err := Parse(`P(_; a1; b1)`); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(`Q() :- P(_; a1; b1)`); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,                          // empty
		`P(a; b)`,                   // two groups
		`P(a; b; c; d)`,             // four groups
		`P(s; x; y,z)`,              // multi-item group
		`P(s; x; y) extra`,          // trailing garbage
		`P(s; x; y), C(c1`,          // unterminated atom
		`P(s; x; y), age >`,         // missing operand
		`P(s; x; y), "lit" = age`,   // constant on left
		`C(c1, _)`,                  // no preference atom
		`P(s; x; y), R(s; a; b; c)`, // bad group count
		`P(s; x; x)`,                // self-comparison
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseNonSessionwise(t *testing.T) {
	if _, err := Parse(`P(s1; a1; b1), P(s2; a1; c1)`); err == nil ||
		!strings.Contains(err.Error(), "sessionwise") {
		t.Fatalf("expected sessionwise error, got %v", err)
	}
}

func TestQueryString(t *testing.T) {
	q := MustParse(`P(v, d; c1; c2), C(c1, D, _, _, e, _), d = "5/5"`)
	s := q.String()
	for _, want := range []string{"P(v, d; c1; c2)", `"D"`, `d = "5/5"`} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestParseQuotedSingle(t *testing.T) {
	q, err := Parse(`P(_, '6/5'; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Prefs[0].Session[1] != C("6/5") {
		t.Fatalf("session = %v", q.Prefs[0].Session)
	}
}
