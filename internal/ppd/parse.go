package ppd

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a conjunctive query in the paper's datalog-style notation:
//
//	Q() <- P(v, d; c1; c2), C(c1, D, _, _, e, _), C(c2, R, _, _, e, _), d = "5/5"
//
// Conventions:
//   - relation names precede "(";
//   - lowercase identifiers are variables, Capitalized identifiers, quoted
//     strings and numbers are constants, "_" is a wildcard;
//   - preference atoms separate the session terms and the two item terms
//     with ";";
//   - comparisons are "variable OP constant" with OP in = != < <= > >=.
//
// The head "Q() <-" (or ":-") is optional.
func Parse(src string) (*Query, error) {
	p := &parser{src: src}
	q, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("ppd: parse error at offset %d: %w", p.pos, err)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse but panics on error; for tests and fixed queries.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	src string
	pos int
}

func (p *parser) parse() (*Query, error) {
	p.skipSpace()
	// Optional head: ident '(' ')' ('<-' | ':-')
	save := p.pos
	if name := p.peekIdent(); name != "" {
		p.readIdent()
		p.skipSpace()
		if p.eat("()") {
			p.skipSpace()
			if !p.eat("<-") && !p.eat(":-") {
				return nil, fmt.Errorf("expected <- after head")
			}
		} else {
			p.pos = save
		}
	}
	q := &Query{}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			break
		}
		if err := p.parseLiteral(q); err != nil {
			return nil, err
		}
		p.skipSpace()
		if !p.eat(",") {
			break
		}
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("unexpected trailing input %q", p.src[p.pos:])
	}
	return q, nil
}

func (p *parser) parseLiteral(q *Query) error {
	save := p.pos
	ident := p.readIdent()
	if ident == "" {
		return fmt.Errorf("expected atom or comparison")
	}
	p.skipSpace()
	if p.peekByte() == '(' {
		return p.parseAtom(q, ident)
	}
	// Comparison: ident OP value.
	p.pos = save
	return p.parseCompare(q)
}

func (p *parser) parseAtom(q *Query, rel string) error {
	if !p.eat("(") {
		return fmt.Errorf("expected ( after %s", rel)
	}
	var groups [][]Term
	cur := []Term{}
	for {
		p.skipSpace()
		if p.peekByte() == ')' {
			p.pos++
			groups = append(groups, cur)
			break
		}
		t, err := p.readTerm()
		if err != nil {
			return err
		}
		cur = append(cur, t)
		p.skipSpace()
		switch p.peekByte() {
		case ',':
			p.pos++
		case ';':
			p.pos++
			groups = append(groups, cur)
			cur = []Term{}
		case ')':
			p.pos++
			groups = append(groups, cur)
			goto done
		default:
			return fmt.Errorf("expected , ; or ) in atom %s", rel)
		}
	}
done:
	switch len(groups) {
	case 1:
		q.Rels = append(q.Rels, RelAtom{Rel: rel, Args: groups[0]})
		return nil
	case 3:
		if len(groups[1]) != 1 || len(groups[2]) != 1 {
			return fmt.Errorf("preference atom %s must have single left and right items", rel)
		}
		q.Prefs = append(q.Prefs, PrefAtom{
			Rel:     rel,
			Session: groups[0],
			Left:    groups[1][0],
			Right:   groups[2][0],
		})
		return nil
	default:
		return fmt.Errorf("atom %s has %d ;-groups, want 1 (ordinary) or 3 (preference)", rel, len(groups))
	}
}

func (p *parser) parseCompare(q *Query) error {
	left, err := p.readTerm()
	if err != nil {
		return err
	}
	p.skipSpace()
	var op string
	for _, cand := range []string{"<=", ">=", "!=", "=", "<", ">"} {
		if p.eat(cand) {
			op = cand
			break
		}
	}
	if op == "" {
		return fmt.Errorf("expected comparison operator")
	}
	p.skipSpace()
	right, err := p.readTerm()
	if err != nil {
		return err
	}
	q.Comps = append(q.Comps, Compare{Left: left, Op: op, Right: right})
	return nil
}

func (p *parser) readTerm() (Term, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return Term{}, fmt.Errorf("expected term")
	}
	c := p.src[p.pos]
	switch {
	case c == '_':
		p.pos++
		return W(), nil
	case c == '"' || c == '\'':
		quote := c
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != quote {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return Term{}, fmt.Errorf("unterminated string")
		}
		v := p.src[start:p.pos]
		p.pos++
		return C(v), nil
	case c >= '0' && c <= '9' || c == '-':
		start := p.pos
		p.pos++
		for p.pos < len(p.src) && (p.src[p.pos] >= '0' && p.src[p.pos] <= '9' || p.src[p.pos] == '.') {
			p.pos++
		}
		return C(p.src[start:p.pos]), nil
	default:
		id := p.readIdent()
		if id == "" {
			return Term{}, fmt.Errorf("expected term, found %q", p.src[p.pos:])
		}
		if unicode.IsUpper(rune(id[0])) {
			return C(id), nil
		}
		return V(id), nil
	}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		break
	}
}

func (p *parser) eat(s string) bool {
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *parser) peekByte() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) peekIdent() string {
	save := p.pos
	id := p.readIdent()
	p.pos = save
	return id
}

func (p *parser) readIdent() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := rune(p.src[p.pos])
		if unicode.IsLetter(c) || c == '_' && p.pos > start || unicode.IsDigit(c) && p.pos > start {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}
