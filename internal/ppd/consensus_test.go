package ppd

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"probpref/internal/consensus"
	"probpref/internal/rank"
	"probpref/internal/rim"
)

const consensusQ = `P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`

func consensusReq(target consensus.Target, k int) *Request {
	return &Request{Kind: KindConsensus, Query: consensusQ, ConsensusTarget: target, K: k}
}

// doConsensus answers one consensus request and unwraps its section.
func doConsensus(t *testing.T, eng *Engine, req *Request) *ConsensusResult {
	t.Helper()
	resp, err := eng.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != KindConsensus || resp.Consensus == nil {
		t.Fatalf("response carries no consensus section: %+v", resp)
	}
	return resp.Consensus
}

// TestConsensusExactSampledMetamorphic is the exact-vs-sampled suite: for
// every target, a seeded sampling evaluation must agree with the exact one
// — the sampled pairwise marginals and membership probabilities within
// their own reported 95% bands (with generous slack for the finite-draw
// tail), and the discrete answers (rankings) identical at this sample size.
func TestConsensusExactSampledMetamorphic(t *testing.T) {
	db := figure1DB(t)
	exactEng := &Engine{DB: db, Method: MethodAuto}
	sampledEng := &Engine{DB: db, Method: MethodRejection, Rng: rand.New(rand.NewSource(5)), RejectionN: 8000}

	t.Run("median", func(t *testing.T) {
		exact := doConsensus(t, exactEng, consensusReq(consensus.TargetMedian, 0))
		sampled := doConsensus(t, sampledEng, consensusReq(consensus.TargetMedian, 0))
		if exact.Sampled || !sampled.Sampled {
			t.Fatalf("routing wrong: exact.Sampled=%v sampled.Sampled=%v", exact.Sampled, sampled.Sampled)
		}
		if exact.LiveSessions != sampled.LiveSessions {
			t.Fatalf("live sessions differ: %d vs %d", exact.LiveSessions, sampled.LiveSessions)
		}
		m := db.M()
		for a := 0; a < m; a++ {
			for b := 0; b < m; b++ {
				if a == b {
					continue
				}
				diff := sampled.Pairwise[a][b] - exact.Pairwise[a][b]
				if diff < 0 {
					diff = -diff
				}
				// 2x the reported 95% half-width: a deterministic bound the
				// seeded run satisfies with margin.
				if tol := 2*sampled.PairHalf[a][b] + 1e-9; diff > tol {
					t.Errorf("pairwise[%d][%d]: sampled %v, exact %v, |diff| %v > %v",
						a, b, sampled.Pairwise[a][b], exact.Pairwise[a][b], diff, tol)
				}
			}
		}
		if exact.Ranking.Key() != sampled.Ranking.Key() {
			t.Errorf("median rankings diverge at 8000 draws/session: exact %v, sampled %v", exact.Ranking, sampled.Ranking)
		}
	})

	t.Run("map", func(t *testing.T) {
		exact := doConsensus(t, exactEng, consensusReq(consensus.TargetMAP, 0))
		sampled := doConsensus(t, sampledEng, consensusReq(consensus.TargetMAP, 0))
		if exact.Ranking.Key() != sampled.Ranking.Key() {
			t.Errorf("MAP rankings diverge: exact %v, sampled %v", exact.Ranking, sampled.Ranking)
		}
		diff := sampled.Prob - exact.Prob
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.05 {
			t.Errorf("MAP prob: sampled %v, exact %v", sampled.Prob, exact.Prob)
		}
	})

	t.Run("topk", func(t *testing.T) {
		exact := doConsensus(t, exactEng, consensusReq(consensus.TargetTopK, 2))
		sampled := doConsensus(t, sampledEng, consensusReq(consensus.TargetTopK, 2))
		if len(exact.Items) != 2 || len(sampled.Items) != 2 {
			t.Fatalf("want 2 items, got %d exact / %d sampled", len(exact.Items), len(sampled.Items))
		}
		for _, it := range exact.Items {
			if it.Half != 0 {
				t.Errorf("exact item carries a half-width: %+v", it)
			}
		}
		// Compare per item id, not per position (order may swap on ties).
		exactProb := make(map[rank.Item]float64)
		for _, it := range exact.Items {
			exactProb[it.Item] = it.Prob
		}
		for _, it := range sampled.Items {
			want, ok := exactProb[it.Item]
			if !ok {
				t.Errorf("sampled top-k picked item %d outside the exact top-k", it.Item)
				continue
			}
			diff := it.Prob - want
			if diff < 0 {
				diff = -diff
			}
			if tol := 2*it.Half + 1e-9; diff > tol {
				t.Errorf("item %d: sampled %v ± %v, exact %v", it.Item, it.Prob, it.Half, want)
			}
		}
	})
}

// TestConsensusSampledDeterminism: a seeded sampled evaluation is a pure
// function of (seed, session keys) — identical rows and answers across
// runs, and identical whether the seed comes from the engine RNG or the
// per-request Seed override.
func TestConsensusSampledDeterminism(t *testing.T) {
	db := figure1DB(t)
	run := func() *ConsensusResult {
		eng := &Engine{DB: db, Method: MethodRejection, Rng: rand.New(rand.NewSource(7)), RejectionN: 500}
		return doConsensus(t, eng, consensusReq(consensus.TargetMedian, 0))
	}
	a, b := run(), run()
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		if ra.Accepts != rb.Accepts || ra.Draws != rb.Draws {
			t.Fatalf("row %d counters differ: %+v vs %+v", i, ra, rb)
		}
		for j := range ra.PairN {
			if ra.PairN[j] != rb.PairN[j] {
				t.Fatalf("row %d pair counter %d differs", i, j)
			}
		}
	}
	if a.ExpectedTau != b.ExpectedTau || a.Ranking.Key() != b.Ranking.Key() {
		t.Fatalf("sampled answers differ: %v/%v vs %v/%v", a.Ranking, a.ExpectedTau, b.Ranking, b.ExpectedTau)
	}

	// The per-request Seed override must reproduce the engine-level seed.
	eng := &Engine{DB: db, Method: MethodRejection, RejectionN: 500}
	req := consensusReq(consensus.TargetMedian, 0)
	req.Seed = 7
	c := doConsensus(t, eng, req)
	if c.ExpectedTau != a.ExpectedTau || c.Ranking.Key() != a.Ranking.Key() {
		t.Fatalf("request-seeded answer differs from engine-seeded: %v/%v vs %v/%v", c.Ranking, c.ExpectedTau, a.Ranking, a.ExpectedTau)
	}
}

// TestConsensusAdaptiveRouting: MethodAdaptive compares the predicted
// enumeration cost against its budget — a starved budget routes to
// sampling, a generous one to exact enumeration.
func TestConsensusAdaptiveRouting(t *testing.T) {
	db := figure1DB(t)
	starved := &Engine{DB: db, Method: MethodAdaptive, Rng: rand.New(rand.NewSource(1)), AdaptiveBudget: 1}
	if res := doConsensus(t, starved, consensusReq(consensus.TargetMedian, 0)); !res.Sampled {
		t.Error("starved adaptive budget should route to sampling")
	}
	generous := &Engine{DB: db, Method: MethodAdaptive, Rng: rand.New(rand.NewSource(1)), AdaptiveBudget: 1e12}
	if res := doConsensus(t, generous, consensusReq(consensus.TargetMedian, 0)); res.Sampled {
		t.Error("generous adaptive budget should route to exact")
	}
}

// bigDB builds a single-session database over more items than the exact
// consensus cap allows.
func bigDB(t *testing.T, m int) *DB {
	t.Helper()
	rows := make([][]string, m)
	for i := range rows {
		rows[i] = []string{fmt.Sprintf("i%02d", i), "X"}
	}
	items, err := NewRelation("C", []string{"item", "tag"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDB(items)
	if err != nil {
		t.Fatal(err)
	}
	pref := &PrefRelation{
		Name:         "P",
		SessionAttrs: []string{"user"},
		Sessions: SessionSlice{
			{Key: []string{"u1"}, Model: rim.MustMallows(rank.Identity(m), 0.5)},
		},
	}
	if err := db.AddPrefRelation(pref); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestConsensusExactCap: beyond MaxExactM items an explicitly exact method
// errors with the enumerating message, MethodAuto degrades to sampling, and
// the sampled median runs the deterministic local search.
func TestConsensusExactCap(t *testing.T) {
	db := bigDB(t, consensus.MaxExactM+1)
	req := &Request{Kind: KindConsensus, Query: `P(_; a; b), C(a, X), C(b, X)`, ConsensusTarget: consensus.TargetMedian}

	exact := &Engine{DB: db, Method: MethodGeneral}
	_, err := exact.Do(context.Background(), req)
	if err == nil || !strings.Contains(err.Error(), "exceeds the exact limit") {
		t.Fatalf("explicit exact beyond the cap: got %v", err)
	}

	auto := &Engine{DB: db, Method: MethodAuto, Rng: rand.New(rand.NewSource(2)), RejectionN: 200}
	res := doConsensus(t, auto, req)
	if !res.Sampled {
		t.Error("MethodAuto beyond the cap should sample")
	}
	if len(res.Ranking) != consensus.MaxExactM+1 {
		t.Errorf("median ranking has %d items, want %d", len(res.Ranking), consensus.MaxExactM+1)
	}
	again := doConsensus(t, &Engine{DB: db, Method: MethodAuto, Rng: rand.New(rand.NewSource(2)), RejectionN: 200}, req)
	if res.Ranking.Key() != again.Ranking.Key() || res.ExpectedTau != again.ExpectedTau {
		t.Error("sampled local-search median not deterministic under a fixed seed")
	}
}

// TestConsensusRowsFoldBitIdentically: re-solving the response's own rows
// through consensus.Solve must reproduce the folded answer bit for bit —
// the invariant the cluster coordinator's merge is built on.
func TestConsensusRowsFoldBitIdentically(t *testing.T) {
	db := figure1DB(t)
	for _, method := range []Method{MethodAuto, MethodRejection} {
		for _, tgt := range []consensus.Target{consensus.TargetMAP, consensus.TargetMedian, consensus.TargetTopK} {
			eng := &Engine{DB: db, Method: method, Rng: rand.New(rand.NewSource(3)), RejectionN: 300}
			k := 0
			if tgt == consensus.TargetTopK {
				k = 2
			}
			res := doConsensus(t, eng, consensusReq(tgt, k))
			refold, err := consensus.Solve(res.Rows, consensus.Params{Target: tgt, M: db.M(), K: k})
			if err != nil {
				t.Fatalf("%v/%v: %v", method, tgt, err)
			}
			if refold.ExpectedTau != res.ExpectedTau || refold.Prob != res.Prob ||
				refold.Ranking.Key() != res.Ranking.Key() ||
				refold.Samples != res.Samples || refold.Accepts != res.Accepts {
				t.Fatalf("%v/%v: refold diverged: %+v vs %+v", method, tgt, refold, res.Result)
			}
			for i := range refold.Items {
				if refold.Items[i] != res.Items[i] {
					t.Fatalf("%v/%v: item %d diverged", method, tgt, i)
				}
			}
			for a := range refold.Pairwise {
				for b := range refold.Pairwise[a] {
					if refold.Pairwise[a][b] != res.Pairwise[a][b] {
						t.Fatalf("%v/%v: pairwise[%d][%d] diverged", method, tgt, a, b)
					}
				}
			}
		}
	}
}

// TestEstimateConsensusCost: the planner estimate scales with sessions and
// factorially with items, and guards the factorial overflow.
func TestEstimateConsensusCost(t *testing.T) {
	small := EstimateConsensusCost(4, 3)
	if small.States != 3*24*4 {
		t.Errorf("EstimateConsensusCost(4, 3).States = %v", small.States)
	}
	if big := EstimateConsensusCost(21, 1); !isInf(big.States) {
		t.Errorf("overflow guard: %+v", big)
	}
}

func isInf(f float64) bool { return f > 1e308 }
