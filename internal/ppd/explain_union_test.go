package ppd

import (
	"strings"
	"testing"
)

func TestExplainUnion(t *testing.T) {
	db := figure1DB(t)
	eng := &Engine{DB: db}
	uq := MustParseUnion(
		`P(_, _; c1; c2), C(c1, _, "F", _, _, _), C(c2, _, "M", _, _, _)` +
			` | P(_, _; c1; c2), C(c1, "D", _, _, e, _), C(c2, "R", _, _, e, _)`)
	ex, err := eng.ExplainUnion(uq)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Disjuncts) != 2 {
		t.Fatalf("disjuncts = %d, want 2", len(ex.Disjuncts))
	}
	if ex.Sessions != 3 || ex.LiveSessions != 3 {
		t.Fatalf("sessions = %d live = %d, want 3/3", ex.Sessions, ex.LiveSessions)
	}
	// First disjunct is itemwise, second is hard with grounded variable e.
	if !ex.Disjuncts[0].Itemwise {
		t.Error("first disjunct should be itemwise")
	}
	if ex.Disjuncts[1].Itemwise {
		t.Error("second disjunct should be hard")
	}
	if len(ex.Disjuncts[1].GroundVars) != 1 || ex.Disjuncts[1].GroundVars[0] != "e" {
		t.Errorf("ground vars = %v, want [e]", ex.Disjuncts[1].GroundVars)
	}
	// Both disjuncts produce two-label patterns, so the merged union is
	// two-label and the merged size is 1 (F>M) + 2 (e in {BS, JD}) = 3.
	if !ex.AllTwoLabel {
		t.Error("merged union should be two-label")
	}
	if ex.MaxUnion != 3 {
		t.Errorf("max merged union = %d, want 3", ex.MaxUnion)
	}
	if ex.Recommended != MethodTwoLabel {
		t.Errorf("recommended = %v, want two-label", ex.Recommended)
	}
	s := ex.String()
	for _, want := range []string{"union of 2 disjuncts", "-- merged --", "two-label"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestExplainUnionConsistentWithEval(t *testing.T) {
	db := figure1DB(t)
	eng := &Engine{DB: db, Method: MethodAuto}
	uq := MustParseUnion(
		`P(_, _; c1; c2), C(c1, _, "F", _, _, _), C(c2, _, M, _, _, _)` +
			` | P(_, _; c1; c2), C(c1, "D", _, _, "JD", _), C(c2, "R", _, _, _, _)`)
	ex, err := eng.ExplainUnion(uq)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.EvalUnion(uq)
	if err != nil {
		t.Fatal(err)
	}
	if ex.DistinctGroups != res.Solves {
		t.Fatalf("explain groups %d != eval solves %d", ex.DistinctGroups, res.Solves)
	}
	if ex.LiveSessions != len(res.PerSession) {
		t.Fatalf("explain live %d != eval sessions %d", ex.LiveSessions, len(res.PerSession))
	}
}

func TestExplainUnionErrors(t *testing.T) {
	db := figure1DB(t)
	eng := &Engine{DB: db}
	if _, err := eng.ExplainUnion(&UnionQuery{}); err == nil {
		t.Error("empty union accepted")
	}
	uq := &UnionQuery{Disjuncts: []*Query{
		MustParse(`P(_, _; c1; c2), C(c1, _, "F", _, _, _)`),
		MustParse(`Nope(_, _; c1; c2), C(c1, _, "F", _, _, _)`),
	}}
	if _, err := eng.ExplainUnion(uq); err == nil {
		t.Error("unknown p-relation accepted")
	}
}
