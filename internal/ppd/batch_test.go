package ppd

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"probpref/internal/solver"
)

// mapPlanCache is a test PlanCache counting hits and compiles.
type mapPlanCache struct {
	mu   sync.Mutex
	m    map[string]*solver.Plan
	hits int
	puts int
}

func newMapPlanCache() *mapPlanCache {
	return &mapPlanCache{m: make(map[string]*solver.Plan)}
}

func (c *mapPlanCache) Get(key string) (*solver.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.m[key]
	if ok {
		c.hits++
	}
	return p, ok
}

func (c *mapPlanCache) Put(key string, p *solver.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	c.m[key] = p
}

// BatchSolveGroups must match per-group SolveUnionCtx bit-for-bit for the
// exact compiled-plan methods — the grouped/batched path is a pure
// performance optimization.
func TestBatchSolveGroupsMatchesPerGroupBitwise(t *testing.T) {
	db := figure1DB(t)
	q := MustParse(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	g, err := NewGrounder(db, q)
	if err != nil {
		t.Fatal(err)
	}
	var groups []BatchGroup
	for _, s := range g.Pref().Sessions.All() {
		gq, err := g.GroundSession(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(gq.Union) == 0 {
			continue
		}
		groups = append(groups, BatchGroup{SM: s.Model, U: gq.Union})
	}
	if len(groups) < 2 {
		t.Fatalf("fixture produced %d groups, want >= 2", len(groups))
	}
	for _, method := range []Method{MethodAuto, MethodTwoLabel, MethodBipartite, MethodRelOrder} {
		eng := &Engine{DB: db, Method: method, Plans: newMapPlanCache(),
			SolverOpts: solver.Options{MaxInvolved: 16}}
		probs, reps, err := eng.BatchSolveGroups(context.Background(), groups)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		for gi, bg := range groups {
			want, wrep, err := eng.SolveUnionCtx(context.Background(), bg.SM, bg.U)
			if err != nil {
				t.Fatalf("%v group %d: %v", method, gi, err)
			}
			if math.Float64bits(probs[gi]) != math.Float64bits(want) {
				t.Fatalf("%v group %d: batched %v != per-group %v", method, gi, probs[gi], want)
			}
			if reps[gi].Method != wrep.Method {
				t.Fatalf("%v group %d: report method %v != %v", method, gi, reps[gi].Method, wrep.Method)
			}
		}
	}
}

// The plan cache must be consulted and filled: a second batch over the same
// shapes compiles nothing new.
func TestBatchSolveGroupsUsesPlanCache(t *testing.T) {
	db := figure1DB(t)
	q := MustParse(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	g, err := NewGrounder(db, q)
	if err != nil {
		t.Fatal(err)
	}
	var groups []BatchGroup
	for _, s := range g.Pref().Sessions.All() {
		gq, err := g.GroundSession(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(gq.Union) == 0 {
			continue
		}
		groups = append(groups, BatchGroup{SM: s.Model, U: gq.Union})
	}
	cache := newMapPlanCache()
	eng := &Engine{DB: db, Method: MethodAuto, Plans: cache}
	first, _, err := eng.BatchSolveGroups(context.Background(), groups)
	if err != nil {
		t.Fatal(err)
	}
	if cache.puts == 0 {
		t.Fatal("no plans cached on first batch")
	}
	putsAfterFirst := cache.puts
	second, _, err := eng.BatchSolveGroups(context.Background(), groups)
	if err != nil {
		t.Fatal(err)
	}
	if cache.puts != putsAfterFirst {
		t.Fatalf("second batch compiled %d new plans, want 0", cache.puts-putsAfterFirst)
	}
	if cache.hits == 0 {
		t.Fatal("second batch did not hit the plan cache")
	}
	for gi := range first {
		if math.Float64bits(first[gi]) != math.Float64bits(second[gi]) {
			t.Fatalf("group %d: cached-plan solve differs: %v vs %v", gi, first[gi], second[gi])
		}
	}
}

// Full evaluations through the batched grouped path must equal per-session
// evaluation exactly (grouping off) for every exact method.
func TestEvalBatchedMatchesUngrouped(t *testing.T) {
	db := figure1DB(t)
	q := MustParse(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	for _, method := range []Method{MethodAuto, MethodTwoLabel, MethodBipartite, MethodRelOrder} {
		batched := &Engine{DB: db, Method: method, Plans: newMapPlanCache()}
		res, err := batched.Eval(q)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		plain := &Engine{DB: db, Method: method, DisableGrouping: true}
		want, err := plain.Eval(q)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if math.Float64bits(res.Prob) != math.Float64bits(want.Prob) ||
			math.Float64bits(res.Count) != math.Float64bits(want.Count) {
			t.Fatalf("%v: batched eval (%v, %v) != ungrouped (%v, %v)",
				method, res.Prob, res.Count, want.Prob, want.Count)
		}
	}
}

// PlanAlgo routes only the exact compiled-plan methods.
func TestPlanAlgoRouting(t *testing.T) {
	db := figure1DB(t)
	q := MustParse(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	g, err := NewGrounder(db, q)
	if err != nil {
		t.Fatal(err)
	}
	s := g.Pref().Sessions.At(0)
	gq, err := g.GroundSession(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := PlanAlgo(MethodAuto, gq.Union); !ok {
		t.Fatal("MethodAuto should plan")
	}
	if algo, ok := PlanAlgo(MethodTwoLabel, gq.Union); !ok || algo != solver.AlgoTwoLabel {
		t.Fatalf("MethodTwoLabel -> %v, %v", algo, ok)
	}
	for _, m := range []Method{MethodGeneral, MethodAdaptive, MethodMISLite, MethodMISAdaptive, MethodRejection} {
		if _, ok := PlanAlgo(m, gq.Union); ok {
			t.Fatalf("method %v should not plan", m)
		}
	}
}

// EstimateBatchedCost: one lane is a solo solve, and per-session cost
// strictly improves with the batch while total cost still grows.
func TestEstimateBatchedCost(t *testing.T) {
	est := CostEstimate{Solver: MethodTwoLabel, States: 1e6}
	if got := EstimateBatchedCost(est, 1); got != est {
		t.Fatalf("one lane must be a solo solve: %+v", got)
	}
	prevTotal := est.States
	for _, lanes := range []int{2, 8, 64} {
		got := EstimateBatchedCost(est, lanes)
		if got.States <= prevTotal {
			t.Fatalf("total batched cost must grow with lanes: %v at %d lanes", got.States, lanes)
		}
		perSession := got.States / float64(lanes)
		if perSession >= est.States {
			t.Fatalf("per-session batched cost %v not below solo %v at %d lanes",
				perSession, est.States, lanes)
		}
		prevTotal = got.States
	}
	// At large batches the per-session cost approaches the lane fraction.
	big := EstimateBatchedCost(est, 1024)
	if ratio := big.States / float64(1024) / est.States; ratio > BatchedLaneFraction+0.01 {
		t.Fatalf("amortized per-session ratio %v exceeds lane fraction", ratio)
	}
	none := CostEstimate{Solver: methodNone, States: math.Inf(1)}
	if got := EstimateBatchedCost(none, 64); got.Solver != methodNone {
		t.Fatalf("no-solver estimate must pass through, got %+v", got)
	}
}

// Satellite regression: an already-expired deadline must degrade an
// adaptive solve to the minimum sampling estimate with a confidence
// interval — never a zero-draw result or an error. (adaptiveBudget clamps
// the remaining-time conversion at zero; without the clamp a negative
// remaining time would produce a negative budget and a nonsensical draw
// count.)
func TestAdaptiveExpiredDeadlineMinimumSamplingEstimate(t *testing.T) {
	db := figure1DB(t)
	q := MustParse(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	g, err := NewGrounder(db, q)
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{DB: db, Method: MethodAdaptive}
	deadlines := map[string]func() (context.Context, context.CancelFunc){
		"expired": func() (context.Context, context.CancelFunc) {
			ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
			return ctx, cancel
		},
		"near-zero": func() (context.Context, context.CancelFunc) {
			ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
			time.Sleep(50 * time.Microsecond)
			return ctx, cancel
		},
	}
	for name, mk := range deadlines {
		for _, s := range g.Pref().Sessions.All() {
			gq, err := g.GroundSession(s)
			if err != nil {
				t.Fatal(err)
			}
			if len(gq.Union) == 0 {
				continue
			}
			ctx, cancel := mk()
			p, rep, err := eng.SolveUnionCtx(ctx, s.Model, gq.Union)
			cancel()
			if err != nil {
				t.Fatalf("%s deadline, session %v: adaptive solve errored: %v", name, s.Key, err)
			}
			if !rep.Sampled {
				t.Fatalf("%s deadline, session %v: not sampled (%+v)", name, s.Key, rep)
			}
			if rep.Samples < adaptiveSampleFloor/2 {
				t.Fatalf("%s deadline, session %v: %d draws below the floor", name, s.Key, rep.Samples)
			}
			if rep.HalfWidth <= 0 {
				t.Fatalf("%s deadline, session %v: no confidence half-width (%+v)", name, s.Key, rep)
			}
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("%s deadline, session %v: estimate %v out of range", name, s.Key, p)
			}
		}
	}
}
