package ppd

import (
	"testing"

	"probpref/internal/rank"
	"probpref/internal/rim"
)

// figure1DB reproduces the RIM-PPD instance of Figure 1 of the paper:
// candidates Trump(0), Clinton(1), Sanders(2), Rubio(3); voters Ann, Bob,
// Dave; polls with Mallows models.
func figure1DB(t *testing.T) *DB {
	t.Helper()
	cands, err := NewRelation("C",
		[]string{"candidate", "party", "sex", "age", "edu", "reg"},
		[][]string{
			{"Trump", "R", "M", "70", "BS", "NE"},
			{"Clinton", "D", "F", "69", "JD", "NE"},
			{"Sanders", "D", "M", "75", "BS", "NE"},
			{"Rubio", "R", "M", "45", "JD", "S"},
		})
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDB(cands)
	if err != nil {
		t.Fatal(err)
	}
	voters, err := NewRelation("V",
		[]string{"voter", "sex", "age", "edu"},
		[][]string{
			{"Ann", "F", "20", "BS"},
			{"Bob", "M", "30", "BS"},
			{"Dave", "M", "50", "MS"},
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddRelation(voters); err != nil {
		t.Fatal(err)
	}
	// Centers use item ids: Trump=0, Clinton=1, Sanders=2, Rubio=3.
	polls := &PrefRelation{
		Name:         "P",
		SessionAttrs: []string{"voter", "date"},
		Sessions: SessionSlice{
			{Key: []string{"Ann", "5/5"}, Model: rim.MustMallows(rank.Ranking{1, 2, 3, 0}, 0.3)},
			{Key: []string{"Bob", "5/5"}, Model: rim.MustMallows(rank.Ranking{0, 3, 2, 1}, 0.3)},
			{Key: []string{"Dave", "6/5"}, Model: rim.MustMallows(rank.Ranking{1, 2, 3, 0}, 0.5)},
		},
	}
	if err := db.AddPrefRelation(polls); err != nil {
		t.Fatal(err)
	}
	return db
}
