package ppd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCountDistributionHandComputed(t *testing.T) {
	d, err := NewCountDistribution([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0.5, 0.25}
	for k, p := range want {
		if math.Abs(d.PMF[k]-p) > 1e-12 {
			t.Errorf("PMF[%d] = %v, want %v", k, d.PMF[k], p)
		}
	}
	if d.N() != 2 {
		t.Errorf("N = %d, want 2", d.N())
	}
	if m := d.Mean(); math.Abs(m-1) > 1e-12 {
		t.Errorf("Mean = %v, want 1", m)
	}
	if v := d.Variance(); math.Abs(v-0.5) > 1e-12 {
		t.Errorf("Variance = %v, want 0.5", v)
	}
}

func TestCountDistributionValidation(t *testing.T) {
	for _, bad := range [][]float64{{-0.1}, {1.5}, {math.NaN()}} {
		if _, err := NewCountDistribution(bad); err == nil {
			t.Errorf("probs %v: want error", bad)
		}
	}
	d, err := NewCountDistribution(nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 0 || math.Abs(d.PMF[0]-1) > 1e-12 {
		t.Errorf("empty distribution: N=%d PMF=%v", d.N(), d.PMF)
	}
	if d.Mean() != 0 || d.Quantile(0.99) != 0 || d.Mode() != 0 {
		t.Error("empty distribution summaries must be zero")
	}
}

func TestCountDistributionPMFSumsToOneQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		probs := make([]float64, n)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		d, err := NewCountDistribution(probs)
		if err != nil {
			return false
		}
		sum := 0.0
		meanFromPMF := 0.0
		varFromPMF := 0.0
		for k, p := range d.PMF {
			if p < -1e-12 {
				return false
			}
			sum += p
			meanFromPMF += float64(k) * p
			varFromPMF += float64(k*k) * p
		}
		varFromPMF -= meanFromPMF * meanFromPMF
		return math.Abs(sum-1) < 1e-9 &&
			math.Abs(meanFromPMF-d.Mean()) < 1e-9 &&
			math.Abs(varFromPMF-d.Variance()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCountDistributionMatchesBinomial(t *testing.T) {
	// Identical probabilities: Poisson-binomial reduces to binomial.
	const n, p = 10, 0.3
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = p
	}
	d, err := NewCountDistribution(probs)
	if err != nil {
		t.Fatal(err)
	}
	binom := func(k int) float64 {
		c := 1.0
		for i := 0; i < k; i++ {
			c = c * float64(n-i) / float64(i+1)
		}
		return c * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
	}
	for k := 0; k <= n; k++ {
		if math.Abs(d.PMF[k]-binom(k)) > 1e-10 {
			t.Errorf("PMF[%d] = %v, binomial %v", k, d.PMF[k], binom(k))
		}
	}
}

func TestCountDistributionCDFTailQuantile(t *testing.T) {
	d, err := NewCountDistribution([]float64{0.2, 0.9, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if c := d.CDF(-1); c != 0 {
		t.Errorf("CDF(-1) = %v, want 0", c)
	}
	if c := d.CDF(3); c != 1 {
		t.Errorf("CDF(3) = %v, want 1", c)
	}
	if tl := d.Tail(0); tl != 1 {
		t.Errorf("Tail(0) = %v, want 1", tl)
	}
	for k := 0; k <= 3; k++ {
		if diff := math.Abs(d.Tail(k) + d.CDF(k-1) - 1); diff > 1e-12 {
			t.Errorf("Tail(%d) + CDF(%d) - 1 = %v", k, k-1, diff)
		}
	}
	if q := d.Quantile(0); q != 0 {
		t.Errorf("Quantile(0) = %d, want 0", q)
	}
	if q := d.Quantile(1); q != 3 {
		// Pr(count <= 2) < 1 because all three sessions can hold jointly.
		t.Errorf("Quantile(1) = %d, want 3", q)
	}
	// Quantile is the generalized inverse of the CDF.
	for _, alpha := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		k := d.Quantile(alpha)
		if d.CDF(k) < alpha-1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v < alpha", alpha, d.CDF(k))
		}
		if k > 0 && d.CDF(k-1) >= alpha {
			t.Errorf("Quantile(%v) = %d not minimal", alpha, k)
		}
	}
}

func TestCountDistributionDegenerate(t *testing.T) {
	d, err := NewCountDistribution([]float64{1, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.PMF[3]-1) > 1e-12 {
		t.Fatalf("deterministic count: PMF = %v, want point mass at 3", d.PMF)
	}
	if d.Mode() != 3 || d.Quantile(0.5) != 3 || d.Variance() != 0 {
		t.Errorf("Mode=%d Quantile(0.5)=%d Var=%v", d.Mode(), d.Quantile(0.5), d.Variance())
	}
}

func TestEngineCountDistribution(t *testing.T) {
	db := figure1DB(t)
	eng := &Engine{DB: db, Method: MethodAuto}
	q, err := Parse(`P(_, _; c1; c2), C(c1, _, "F", _, _, _), C(c2, _, "M", _, _, _)`)
	if err != nil {
		t.Fatal(err)
	}
	d, err := eng.CountDistribution(q)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 3 {
		t.Fatalf("support over %d sessions, want 3", d.N())
	}
	res, err := eng.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mean()-res.Count) > 1e-9 {
		t.Fatalf("distribution mean %v != Count-Session expectation %v", d.Mean(), res.Count)
	}
	// Pr(count >= 1) must equal the Boolean confidence.
	if math.Abs(d.Tail(1)-res.Prob) > 1e-9 {
		t.Fatalf("Tail(1) = %v != Boolean Pr(Q) %v", d.Tail(1), res.Prob)
	}
	sum := 0.0
	for _, p := range d.PMF {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PMF sums to %v", sum)
	}
}

func TestEngineCountDistributionMonteCarlo(t *testing.T) {
	db := figure1DB(t)
	eng := &Engine{DB: db, Method: MethodAuto}
	q, err := Parse(`P(_, _; c1; c2), C(c1, "D", _, _, _, _), C(c2, "R", _, _, _, _)`)
	if err != nil {
		t.Fatal(err)
	}
	d, err := eng.CountDistribution(q)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGrounder(db, q)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	const worlds = 20000
	hist := make([]float64, d.N()+1)
	for w := 0; w < worlds; w++ {
		world := db.SampleWorld(rng)
		c, err := g.CountIn(world)
		if err != nil {
			t.Fatal(err)
		}
		hist[c]++
	}
	for k := range hist {
		got := hist[k] / worlds
		if math.Abs(got-d.PMF[k]) > 0.015 {
			t.Errorf("PMF[%d]: Monte Carlo %v, exact %v", k, got, d.PMF[k])
		}
	}
}

func TestEngineCountDistributionIncludesDeadSessions(t *testing.T) {
	db := figure1DB(t)
	eng := &Engine{DB: db, Method: MethodAuto}
	// Ann's 5/5 session only: the other two sessions cannot match the
	// session-key constant, so their grounded unions are empty; the support
	// must still cover all three sessions.
	q, err := Parse(`P("Ann", _; c1; c2), C(c1, _, "F", _, _, _), C(c2, _, "M", _, _, _)`)
	if err != nil {
		t.Fatal(err)
	}
	d, err := eng.CountDistribution(q)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 3 {
		t.Fatalf("support over %d sessions, want 3", d.N())
	}
	if d.PMF[2] != 0 || d.PMF[3] != 0 {
		t.Fatalf("counts above 1 must be impossible: PMF = %v", d.PMF)
	}
}
