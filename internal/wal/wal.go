// Package wal implements the write-ahead log of the ingest path: an
// append-only, segmented, CRC-64/ECMA-checksummed record log that makes a
// POST /v1/sessions acknowledgement durable before the registry publishes
// the grown model. One record holds one accepted ingest batch (the
// registry's JSON wire form); on restart the registry replays the tail of
// the log over the latest durable snapshot, so every acknowledged batch
// survives a crash even when the snapshot write behind it never landed.
//
// On disk a log is a directory of segment files named
// "wal-<firstseq:016x>.seg". Each segment opens with a 32-byte header
//
//	[0,8)    magic "PPDWAL01"
//	[8,12)   version  uint32 (currently 1)
//	[12,16)  reserved uint32 (zero)
//	[16,24)  first record sequence number, uint64
//	[24,32)  CRC-64/ECMA over bytes [0,24)
//
// followed by records, each
//
//	[0,4)    payload length uint32
//	[4,12)   CRC-64/ECMA over the payload
//	[12,..)  payload bytes
//
// all little-endian. Sequence numbers start at 1 and are implied by
// position: a segment's n-th record has sequence firstseq+n-1, and the next
// segment's header must continue where the previous one stopped. A crashed
// append can only leave a shorter file than a completed one (segments are
// never preallocated), so Open repairs a torn tail — an incomplete or
// checksum-failing final record of the final segment — by truncating it,
// while the same damage anywhere else is real corruption and fails Open
// with a typed error instead of silently dropping acknowledged records.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Magic is the 8-byte signature opening every segment file.
const Magic = "PPDWAL01"

// Version is the segment format version this package reads and writes.
const Version = 1

const (
	segHeaderSize = 32
	recHeaderSize = 12

	// maxRecordLen bounds one record's payload so a corrupt length prefix
	// can never drive a proportional allocation.
	maxRecordLen = 1 << 28
)

// Typed replay errors. Every decode failure of Open and Replay wraps
// exactly one of these, so callers (and the fuzz target) can classify with
// errors.Is.
var (
	// ErrTornTail reports an incomplete or checksum-failing final record at
	// the very end of the log: the footprint of an append cut short by a
	// crash. Open repairs it by truncating; read-only replay surfaces it.
	ErrTornTail = errors.New("wal: torn tail")
	// ErrChecksum reports a record whose payload does not match its stored
	// CRC anywhere before the end of the log — data corruption, not a torn
	// write.
	ErrChecksum = errors.New("wal: checksum mismatch")
	// ErrFormat reports a structurally invalid segment: bad magic or
	// version, a header checksum mismatch, an oversized record length, or
	// segments whose sequence numbers do not join up.
	ErrFormat = errors.New("wal: malformed segment")
	// ErrClosed reports an operation on a closed log.
	ErrClosed = errors.New("wal: log closed")
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// SyncPolicy selects when Append makes records durable.
type SyncPolicy int

// The fsync policies of Options.Sync.
const (
	// SyncAlways fsyncs after every append: the returned sequence number is
	// durable. This is the policy the ack-durability invariant of the
	// ingest path assumes.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per Options.SyncEvery, driven by
	// appends and a background flusher: a crash can lose up to one
	// interval of acknowledged batches.
	SyncInterval
	// SyncNever never fsyncs explicitly (the OS flushes on its schedule);
	// rotation and Close still sync so sealed segments are safe.
	SyncNever
)

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses the flag spelling of a sync policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always | interval | never)", s)
}

// Options tunes an opened log.
type Options struct {
	// Sync selects the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval flush period (default 50ms).
	SyncEvery time.Duration
	// SegmentBytes rotates to a new segment once the active one reaches
	// this size (default 4 MiB). Compaction removes whole segments only, so
	// smaller segments reclaim space sooner at the cost of more files.
	SegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 50 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// Record is one replayed log entry.
type Record struct {
	// Seq is the record's sequence number (1-based, strictly increasing
	// across the whole log).
	Seq uint64
	// Payload is the record's bytes. Replay yields a fresh copy per record;
	// callers may retain it.
	Payload []byte
}

// segment is one sealed (read-only) segment's bookkeeping.
type segment struct {
	path     string
	firstSeq uint64
	lastSeq  uint64 // 0 when the segment holds no records
	size     int64
}

// Log is an open write-ahead log. All methods are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu         sync.Mutex
	sealed     []segment // read-only predecessors of the active segment
	active     *os.File
	activeSeg  segment // size tracks the written (not necessarily synced) length
	nextSeq    uint64
	dirty      bool // writes not yet fsynced
	lastSync   time.Time
	closed     bool
	tornRepair int // torn-tail truncations performed by Open

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// segName returns the file name of the segment whose first record is seq.
func segName(seq uint64) string {
	return fmt.Sprintf("wal-%016x.seg", seq)
}

// Open opens (creating if needed) the log directory, validates every
// segment, repairs a torn tail in the final segment, and readies the log
// for appends. Mid-log corruption fails Open with ErrChecksum/ErrFormat:
// acknowledged records would be lost, and that must be an operator
// decision, never a silent truncation.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	names, err := segmentNames(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, nextSeq: 1, stop: make(chan struct{})}
	for i, name := range names {
		path := filepath.Join(dir, name)
		seg, recs, tornAt, err := scanSegment(path, i == len(names)-1)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		if tornAt >= 0 && tornAt < segHeaderSize {
			// The crash landed inside the header write: the segment never held
			// a record, so remove the stub. Continuity is carried by the
			// predecessor that rotation sealed just before.
			if err := os.Remove(path); err != nil {
				return nil, fmt.Errorf("removing torn segment %s: %w", name, err)
			}
			l.tornRepair++
			continue
		}
		if i == 0 {
			l.nextSeq = seg.firstSeq
		} else if seg.firstSeq != l.nextSeq {
			return nil, fmt.Errorf("%w: %s starts at seq %d, want %d", ErrFormat, name, seg.firstSeq, l.nextSeq)
		}
		if tornAt >= 0 {
			if err := os.Truncate(path, tornAt); err != nil {
				return nil, fmt.Errorf("repairing torn tail of %s: %w", name, err)
			}
			seg.size = tornAt
			l.tornRepair++
		}
		l.nextSeq = seg.firstSeq + uint64(recs)
		l.sealed = append(l.sealed, seg)
	}
	// The last scanned segment (if any) becomes the active one.
	if n := len(l.sealed); n > 0 {
		l.activeSeg = l.sealed[n-1]
		l.sealed = l.sealed[:n-1]
		f, err := os.OpenFile(l.activeSeg.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		l.active = f
	} else if err := l.openSegmentLocked(); err != nil {
		return nil, err
	}
	if opts.Sync == SyncInterval {
		l.wg.Add(1)
		go l.flushLoop()
	}
	return l, nil
}

// segmentNames lists the directory's segment files in name (= sequence)
// order.
func segmentNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if n := e.Name(); !e.IsDir() && strings.HasPrefix(n, "wal-") && strings.HasSuffix(n, ".seg") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// openSegmentLocked creates a fresh active segment starting at nextSeq;
// l.mu must be held (or the log not yet shared).
func (l *Log) openSegmentLocked() error {
	path := filepath.Join(l.dir, segName(l.nextSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	var hdr [segHeaderSize]byte
	copy(hdr[:], Magic)
	binary.LittleEndian.PutUint32(hdr[8:], Version)
	binary.LittleEndian.PutUint64(hdr[16:], l.nextSeq)
	binary.LittleEndian.PutUint64(hdr[24:], crc64.Checksum(hdr[:24], crcTable))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	l.active = f
	l.activeSeg = segment{path: path, firstSeq: l.nextSeq, size: segHeaderSize}
	return nil
}

// Append writes one record and returns its sequence number. With
// SyncAlways the record is durable when Append returns; the other policies
// trade that guarantee for throughput. Concurrent appends serialize;
// sequence numbers are assigned in write order.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > maxRecordLen {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte limit", len(payload), maxRecordLen)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	rec := int64(recHeaderSize + len(payload))
	if l.activeSeg.size > segHeaderSize && l.activeSeg.size+rec > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	buf := make([]byte, recHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[4:], crc64.Checksum(payload, crcTable))
	copy(buf[recHeaderSize:], payload)
	if _, err := l.active.Write(buf); err != nil {
		// The write may have landed partially: the on-disk tail is torn. A
		// failed append is never acknowledged, and reopening repairs the
		// tail, so the log's contract holds; refuse further appends rather
		// than interleave records with garbage.
		l.closed = true
		l.active.Close()
		return 0, err
	}
	seq := l.nextSeq
	l.nextSeq++
	l.activeSeg.size += rec
	l.activeSeg.lastSeq = seq
	l.dirty = true
	switch l.opts.Sync {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.SyncEvery {
			if err := l.syncLocked(); err != nil {
				return 0, err
			}
		}
	}
	return seq, nil
}

// rotateLocked seals the active segment and opens the next one; l.mu must
// be held.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.active.Close(); err != nil {
		return err
	}
	l.sealed = append(l.sealed, l.activeSeg)
	return l.openSegmentLocked()
}

// syncLocked fsyncs the active segment; l.mu must be held.
func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.lastSync = time.Now()
	return nil
}

// Sync forces pending writes to disk regardless of the sync policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// flushLoop is the SyncInterval background flusher: it bounds how long an
// appended record can stay unsynced when no later append pushes it out.
func (l *Log) flushLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				l.syncLocked() // best-effort; the next Append surfaces errors
			}
			l.mu.Unlock()
		}
	}
}

// Close syncs and closes the log. Further appends fail with ErrClosed.
func (l *Log) Close() error {
	l.stopOnce.Do(func() { close(l.stop) })
	l.wg.Wait()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	l.closed = true
	return err
}

// LastSeq returns the highest appended sequence number (0 when the log has
// never held a record).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// FirstSeq returns the lowest sequence number still present (which trails
// compaction), or 0 when the log holds no records.
func (l *Log) FirstSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, s := range append(append([]segment{}, l.sealed...), l.activeSeg) {
		if s.lastSeq > 0 {
			return s.firstSeq
		}
	}
	return 0
}

// TornRepairs reports how many torn tails Open truncated.
func (l *Log) TornRepairs() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tornRepair
}

// Segments reports the current segment-file count (sealed plus active).
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.sealed) + 1
}

// Compact removes sealed segments whose every record has sequence <= upTo:
// the caller asserts those records are durably covered elsewhere (a model
// snapshot). The active segment is never removed — replay skips its
// already-covered records by sequence number instead. Returns the number
// of segments deleted.
func (l *Log) Compact(upTo uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	removed := 0
	for len(l.sealed) > 0 {
		s := l.sealed[0]
		if s.lastSeq == 0 || s.lastSeq > upTo {
			break
		}
		if err := os.Remove(s.path); err != nil {
			return removed, err
		}
		l.sealed = l.sealed[1:]
		removed++
	}
	return removed, nil
}
