package wal_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc64"
	"os"
	"path/filepath"
	"testing"

	"probpref/internal/wal"
)

// fuzzSegment builds a valid one-segment log holding the given payloads
// and returns the raw segment bytes.
func fuzzSegment(f *testing.F, payloads ...[]byte) []byte {
	f.Helper()
	dir := f.TempDir()
	l, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range payloads {
		if _, err := l.Append(p); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		f.Fatalf("want exactly one segment, got %d (err %v)", len(ents), err)
	}
	data, err := os.ReadFile(filepath.Join(dir, ents[0].Name()))
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzWALReplay throws arbitrary bytes at the segment decoder, as both a
// read-only replay cursor and a repairing Open. The contract under
// fuzzing: neither ever panics; every decode failure classifies as exactly
// one typed error (ErrTornTail, ErrChecksum, ErrFormat) yielded once, at
// the end of the iteration; records before a failure are fully decoded
// with dense sequence numbers; and when Open accepts (possibly repairing)
// the bytes, the repaired directory replays cleanly — repair converges in
// one pass.
//
// The committed corpus under testdata/fuzz/FuzzWALReplay (regenerate with
// `go run ./internal/wal/testdata/gen_corpus.go`) seeds the mutator with a
// valid segment and targeted damage on each validation path.
func FuzzWALReplay(f *testing.F) {
	valid := fuzzSegment(f, []byte("alpha"), []byte("beta"), []byte("gamma"))
	f.Add([]byte{})
	f.Add([]byte(wal.Magic))
	f.Add(bytes.Clone(valid))
	f.Add(valid[:len(valid)-3]) // torn tail
	flip := bytes.Clone(valid)
	flip[len(flip)-1] ^= 0x80
	f.Add(flip) // bit-flipped tail
	huge := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(huge[32:], 1<<30)
	f.Add(huge) // oversized declared length
	crc := bytes.Clone(valid)
	binary.LittleEndian.PutUint64(crc[24:], crc64.Checksum([]byte("nope"), crc64.MakeTable(crc64.ECMA)))
	f.Add(crc) // header checksum mismatch

	typed := func(t *testing.T, err error) {
		t.Helper()
		n := 0
		for _, sentinel := range []error{wal.ErrTornTail, wal.ErrChecksum, wal.ErrFormat} {
			if errors.Is(err, sentinel) {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("error matches %d typed sentinels, want exactly 1: %v", n, err)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		seg := filepath.Join(dir, "wal-0000000000000001.seg")
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}

		// Read-only replay: records decode densely, then at most one typed
		// error ends the iteration.
		var lastSeq uint64
		var sawErr bool
		for r, err := range wal.Replay(dir) {
			if sawErr {
				t.Fatal("cursor yielded past its error")
			}
			if err != nil {
				typed(t, err)
				sawErr = true
				continue
			}
			if lastSeq != 0 && r.Seq != lastSeq+1 {
				t.Fatalf("sequence jumped %d -> %d", lastSeq, r.Seq)
			}
			lastSeq = r.Seq
			_ = append([]byte(nil), r.Payload...) // payload must be readable
		}

		// Repairing open: accept-and-repair or fail typed; never both halves.
		l, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
		if err != nil {
			typed(t, err)
			return
		}
		repaired := l.LastSeq()
		if err := l.Close(); err != nil {
			t.Fatalf("close after open: %v", err)
		}
		// The repaired directory must now replay cleanly and completely.
		var n uint64
		for r, err := range wal.Replay(dir) {
			if err != nil {
				t.Fatalf("replay after repair: %v", err)
			}
			n = r.Seq
		}
		// Open of the fuzzed bytes may itself have created a fresh first
		// segment (torn-header removal), so compare against its view.
		if n != repaired {
			t.Fatalf("replay after repair ends at seq %d, Open saw %d", n, repaired)
		}
	})
}
