//go:build ignore

// gen_corpus regenerates the committed seed corpus of FuzzWALReplay:
//
//	go run ./internal/wal/testdata/gen_corpus.go
//
// It writes one corpus file per entry into
// internal/wal/testdata/fuzz/FuzzWALReplay, in the native Go fuzzing
// corpus encoding. Entries are a valid three-record segment plus targeted
// damage on each validation path of the decoder — torn tails, bit flips,
// header corruption, length overruns — so the mutator starts at every
// branch.
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"probpref/internal/wal"
)

func main() {
	dir := filepath.Join("internal", "wal", "testdata", "fuzz", "FuzzWALReplay")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	tmp, err := os.MkdirTemp("", "walcorpus")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)
	l, err := wal.Open(tmp, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range []string{"alpha", "beta", "gamma"} {
		if _, err := l.Append([]byte(p)); err != nil {
			log.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		log.Fatal(err)
	}
	ents, err := os.ReadDir(tmp)
	if err != nil || len(ents) != 1 {
		log.Fatalf("want one segment, got %d (err %v)", len(ents), err)
	}
	valid, err := os.ReadFile(filepath.Join(tmp, ents[0].Name()))
	if err != nil {
		log.Fatal(err)
	}

	mut := func(f func(c []byte)) []byte {
		c := bytes.Clone(valid)
		f(c)
		return c
	}
	entries := map[string][]byte{
		"valid":       valid,
		"empty":       {},
		"magic_only":  []byte(wal.Magic),
		"bad_magic":   mut(func(c []byte) { c[0] ^= 0xFF }),
		"bad_version": mut(func(c []byte) { binary.LittleEndian.PutUint32(c[8:], 99) }),
		"bad_hdr_crc": mut(func(c []byte) { c[25] ^= 1 }),
		"seq_zero": mut(func(c []byte) {
			binary.LittleEndian.PutUint64(c[16:], 0)
			binary.LittleEndian.PutUint64(c[24:], crc64.Checksum(c[:24], crc64.MakeTable(crc64.ECMA)))
		}),
		"torn_header":  valid[:17],
		"torn_payload": valid[:len(valid)-2],
		"torn_rec_hdr": valid[:len(valid)-len("gamma")-8],
		"flip_tail":    mut(func(c []byte) { c[len(c)-1] ^= 0x40 }),
		"flip_mid":     mut(func(c []byte) { c[44] ^= 0x01 }),
		"huge_len":     mut(func(c []byte) { binary.LittleEndian.PutUint32(c[32:], 1<<30) }),
		"header_only":  valid[:32],
	}
	for name, data := range entries {
		path := filepath.Join(dir, name)
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
	}
}
