package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// collect drains a replay cursor, failing the test on any error.
func collect(t *testing.T, dir string) []Record {
	t.Helper()
	var recs []Record
	for r, err := range Replay(dir) {
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		recs = append(recs, r)
	}
	return recs
}

// appendN appends payloads "rec-<seq>" for n records and returns them.
func appendN(t *testing.T, l *Log, n int) [][]byte {
	t.Helper()
	var out [][]byte
	for i := 0; i < n; i++ {
		p := fmt.Appendf(nil, "rec-%d", l.LastSeq()+1)
		if _, err := l.Append(p); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		out = append(out, p)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, l, 5)
	if got := l.LastSeq(); got != 5 {
		t.Fatalf("LastSeq = %d, want 5", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, dir)
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d: seq %d, want %d", i, r.Seq, i+1)
		}
		if !bytes.Equal(r.Payload, want[i]) {
			t.Errorf("record %d: payload %q, want %q", i, r.Payload, want[i])
		}
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := l.Append([]byte("after reopen"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 {
		t.Fatalf("seq after reopen = %d, want 4", seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if n := len(collect(t, dir)); n != 4 {
		t.Fatalf("replayed %d records, want 4", n)
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record larger than a few bytes forces rotation.
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 40)
	for i := 0; i < 6; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Segments(); got < 3 {
		t.Fatalf("Segments() = %d, want >= 3 after forced rotation", got)
	}
	recs := func() []Record {
		var out []Record
		for r, err := range l.Replay() {
			if err != nil {
				t.Fatalf("live replay: %v", err)
			}
			out = append(out, r)
		}
		return out
	}()
	if len(recs) != 6 {
		t.Fatalf("live replay saw %d records, want 6", len(recs))
	}

	removed, err := l.Compact(4)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("Compact(4) removed no segments")
	}
	if first := l.FirstSeq(); first == 0 || first > 5 {
		t.Fatalf("FirstSeq after compaction = %d, want in (0,5]", first)
	}
	// Replay after compaction starts past the removed segments but still
	// reaches the tail.
	var seqs []uint64
	for r, err := range l.Replay() {
		if err != nil {
			t.Fatalf("replay after compaction: %v", err)
		}
		seqs = append(seqs, r.Seq)
	}
	if len(seqs) == 0 || seqs[len(seqs)-1] != 6 {
		t.Fatalf("replay after compaction ends at %v, want last seq 6", seqs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactNeverRemovesActiveSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3)
	removed, err := l.Compact(3)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Fatalf("Compact removed %d segments including the active one", removed)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if n := len(collect(t, dir)); n != 3 {
		t.Fatalf("records after compaction attempt = %d, want 3", n)
	}
}

// tornVariant mutates the final segment's bytes to simulate a crash.
type tornVariant struct {
	name string
	// mutate returns the damaged replacement for the segment bytes.
	mutate func([]byte) []byte
}

func tornVariants() []tornVariant {
	return []tornVariant{
		{"half record header", func(b []byte) []byte { return b[:len(b)-recHeaderSize+3-0] }},
		{"half payload", func(b []byte) []byte { return b[:len(b)-2] }},
		{"length only", func(b []byte) []byte {
			// Keep 4 bytes of the final record's 12-byte header.
			return b[:lastRecordOffset(b)+4]
		}},
		{"bit-flipped payload tail", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 0x40
			return c
		}},
		{"bit-flipped length tail", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[lastRecordOffset(c)] ^= 0x10
			return c
		}},
	}
}

// lastRecordOffset walks a valid segment and returns the offset of its
// final record.
func lastRecordOffset(b []byte) int64 {
	off := int64(segHeaderSize)
	last := off
	for off < int64(len(b)) {
		last = off
		n := int64(binary.LittleEndian.Uint32(b[off:]))
		off += recHeaderSize + n
	}
	return last
}

func TestTornTailRepair(t *testing.T) {
	for _, v := range tornVariants() {
		t.Run(v.name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, l, 4)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			seg := filepath.Join(dir, segName(1))
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(seg, v.mutate(data), 0o644); err != nil {
				t.Fatal(err)
			}

			// Read-only replay surfaces the torn tail after the intact prefix.
			var got int
			var tailErr error
			for r, err := range Replay(dir) {
				if err != nil {
					tailErr = err
					break
				}
				_ = r
				got++
			}
			if !errors.Is(tailErr, ErrTornTail) {
				t.Fatalf("read-only replay error = %v, want ErrTornTail", tailErr)
			}
			if got != 3 {
				t.Fatalf("read-only replay yielded %d records before the tear, want 3", got)
			}

			// Open repairs by truncation and the log keeps working.
			l, err = Open(dir, Options{})
			if err != nil {
				t.Fatalf("Open after tear: %v", err)
			}
			if l.TornRepairs() != 1 {
				t.Fatalf("TornRepairs = %d, want 1", l.TornRepairs())
			}
			if l.LastSeq() != 3 {
				t.Fatalf("LastSeq after repair = %d, want 3", l.LastSeq())
			}
			if seq, err := l.Append([]byte("replacement")); err != nil || seq != 4 {
				t.Fatalf("append after repair: seq %d, err %v; want 4, nil", seq, err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if n := len(collect(t, dir)); n != 4 {
				t.Fatalf("records after repair+append = %d, want 4", n)
			}
		})
	}
}

func TestTornHeaderSegmentRemoved(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("y"), 40)
	for i := 0; i < 3; i++ { // forces at least one rotation
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	last := l.LastSeq()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash inside the header write of a freshly rotated segment.
	stub := filepath.Join(dir, segName(last+1))
	if err := os.WriteFile(stub, []byte(Magic[:5]), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open with torn-header stub: %v", err)
	}
	if _, err := os.Stat(stub); !os.IsNotExist(err) {
		t.Fatalf("torn-header stub still exists (stat err %v)", err)
	}
	if l.LastSeq() != last {
		t.Fatalf("LastSeq = %d, want %d", l.LastSeq(), last)
	}
	if seq, err := l.Append([]byte("next")); err != nil || seq != last+1 {
		t.Fatalf("append after stub removal: seq %d, err %v; want %d, nil", seq, err, last+1)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMidLogCorruptionFailsOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the FIRST record: valid records follow, so this
	// is corruption, not a torn tail.
	data[segHeaderSize+recHeaderSize] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrChecksum) {
		t.Fatalf("Open = %v, want ErrChecksum", err)
	}
	var tailErr error
	for _, err := range Replay(dir) {
		if err != nil {
			tailErr = err
			break
		}
	}
	if !errors.Is(tailErr, ErrChecksum) {
		t.Fatalf("replay error = %v, want ErrChecksum", tailErr)
	}
}

func TestBadMagicFailsOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(1))
	data, _ := os.ReadFile(seg)
	data[0] = 'X'
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrFormat) {
		t.Fatalf("Open = %v, want ErrFormat", err)
	}
}

func TestSequenceGapFailsOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("z"), 40)
	for i := 0; i < 4; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 3 {
		t.Fatalf("want >= 3 segments, got %d", l.Segments())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Delete a middle segment: the survivors no longer join up.
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, names[1])); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrFormat) {
		t.Fatalf("Open = %v, want ErrFormat", err)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Sync: pol, SyncEvery: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, l, 10)
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if n := len(collect(t, dir)); n != 10 {
				t.Fatalf("records = %d, want 10", n)
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		got, err := ParseSyncPolicy(pol.String())
		if err != nil || got != pol {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", pol.String(), got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted an unknown policy")
	}
}

func TestConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever, SegmentBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append(fmt.Appendf(nil, "w%d-%d", w, i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, dir)
	if len(recs) != workers*per {
		t.Fatalf("records = %d, want %d", len(recs), workers*per)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d: sequence not dense", i, r.Seq)
		}
	}
}

func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close = %v, want nil", err)
	}
}

func TestLiveReplayBoundedUnderConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 20)
	cursor := l.Replay()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				l.Append([]byte("concurrent"))
			}
		}
	}()
	var seen int
	for r, err := range cursor {
		if err != nil {
			t.Errorf("bounded replay error: %v", err)
			break
		}
		if r.Seq <= 20 {
			seen++
		}
	}
	close(stop)
	wg.Wait()
	if seen != 20 {
		t.Fatalf("bounded replay saw %d of the 20 pre-cursor records", seen)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyLogReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.LastSeq(); got != 0 {
		t.Fatalf("LastSeq on empty log = %d, want 0", got)
	}
	if got := l.FirstSeq(); got != 0 {
		t.Fatalf("FirstSeq on empty log = %d, want 0", got)
	}
	for range l.Replay() {
		t.Fatal("empty log yielded a record")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if n := len(collect(t, dir)); n != 0 {
		t.Fatalf("read-only replay of empty log yielded %d records", n)
	}
}

func TestRecordChecksumMatchesSpec(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("spec check")
	if _, err := l.Append(payload); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(data[segHeaderSize:]); got != uint32(len(payload)) {
		t.Fatalf("length prefix = %d, want %d", got, len(payload))
	}
	want := crc64.Checksum(payload, crc64.MakeTable(crc64.ECMA))
	if got := binary.LittleEndian.Uint64(data[segHeaderSize+4:]); got != want {
		t.Fatalf("record CRC = %x, want CRC-64/ECMA %x", got, want)
	}
}
