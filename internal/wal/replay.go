package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"iter"
	"os"
	"path/filepath"
)

// This file is the read side of the log: the segment decoder shared by
// Open's validation/repair scan, the replay cursors and the fuzz target.
//
// Decode classification. A crashed append only ever shortens the log
// (segments are never preallocated), so a record that runs past the end of
// the final segment, or whose checksum fails with no decodable record
// after it, is a torn tail (ErrTornTail) — truncating it loses nothing
// that was ever durable. The same damage followed by a decodable record,
// or in any non-final segment, cannot be a torn write and is surfaced as
// corruption (ErrChecksum / ErrFormat) instead of repaired, because
// repairing it would silently drop acknowledged records.

// decodeHeader validates a segment header and returns the segment's first
// sequence number.
func decodeHeader(data []byte) (uint64, error) {
	if string(data[:8]) != Magic {
		return 0, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != Version {
		return 0, fmt.Errorf("%w: version %d, want %d", ErrFormat, v, Version)
	}
	if crc64.Checksum(data[:24], crcTable) != binary.LittleEndian.Uint64(data[24:]) {
		return 0, fmt.Errorf("%w: header checksum mismatch", ErrFormat)
	}
	first := binary.LittleEndian.Uint64(data[16:])
	if first == 0 {
		return 0, fmt.Errorf("%w: first sequence 0 (sequences are 1-based)", ErrFormat)
	}
	return first, nil
}

// recordAt tries to decode one record at off; ok reports a complete,
// checksum-valid record.
func recordAt(data []byte, off int64) (payload []byte, end int64, ok bool) {
	if int64(len(data))-off < recHeaderSize {
		return nil, 0, false
	}
	n := int64(binary.LittleEndian.Uint32(data[off:]))
	end = off + recHeaderSize + n
	if n > maxRecordLen || end > int64(len(data)) {
		return nil, 0, false
	}
	payload = data[off+recHeaderSize : end]
	if crc64.Checksum(payload, crcTable) != binary.LittleEndian.Uint64(data[off+4:]) {
		return nil, end, false
	}
	return payload, end, true
}

// replaySegment yields one segment's records. wantFirst, when non-zero,
// pins the expected first sequence (continuity across segments). last
// marks the log's final segment, where tail damage decodes as ErrTornTail
// at offset tornAt; elsewhere tornAt stays -1. Returns the sequence the
// next segment must start at and whether iteration may continue.
func replaySegment(data []byte, wantFirst uint64, last bool, yield func(Record, error) bool) (nextSeq uint64, tornAt int64, ok bool) {
	if int64(len(data)) < segHeaderSize {
		if last {
			return wantFirst, 0, yield(Record{}, fmt.Errorf("%w: truncated header", ErrTornTail))
		}
		return 0, -1, yield(Record{}, fmt.Errorf("%w: truncated header", ErrFormat))
	}
	first, err := decodeHeader(data)
	if err != nil {
		return 0, -1, yield(Record{}, err)
	}
	if wantFirst != 0 && first != wantFirst {
		return 0, -1, yield(Record{}, fmt.Errorf("%w: segment starts at seq %d, want %d", ErrFormat, first, wantFirst))
	}
	seq := first
	off := int64(segHeaderSize)
	for off < int64(len(data)) {
		payload, end, recOK := recordAt(data, off)
		if !recOK {
			// Torn tail iff this is the final segment and nothing decodable
			// follows the damaged record; otherwise real corruption.
			if last && !decodableAfter(data, end) {
				return seq, off, yield(Record{}, fmt.Errorf("%w: record %d at offset %d", ErrTornTail, seq, off))
			}
			if end == 0 || end > int64(len(data)) {
				return seq, -1, yield(Record{}, fmt.Errorf("%w: record %d at offset %d overruns the segment", ErrFormat, seq, off))
			}
			return seq, -1, yield(Record{}, fmt.Errorf("%w: record %d at offset %d", ErrChecksum, seq, off))
		}
		if !yield(Record{Seq: seq, Payload: append([]byte(nil), payload...)}, nil) {
			return seq + 1, -1, false
		}
		seq++
		off = end
	}
	return seq, -1, true
}

// decodableAfter reports whether a complete, checksum-valid record starts
// at off — evidence that damage before off is mid-log corruption rather
// than a torn tail. An out-of-range off (a corrupt length) counts as "no".
func decodableAfter(data []byte, off int64) bool {
	if off < segHeaderSize || off > int64(len(data)) {
		return false
	}
	_, _, ok := recordAt(data, off)
	return ok
}

// Replay reads a log directory without opening it for appends and yields
// its records in sequence order. Decode failures yield exactly one typed
// error (ErrTornTail, ErrChecksum or ErrFormat) and end the iteration; a
// torn tail therefore yields every record before the tear first. I/O
// errors (an unreadable directory or file) are yielded as-is.
func Replay(dir string) iter.Seq2[Record, error] {
	return func(yield func(Record, error) bool) {
		names, err := segmentNames(dir)
		if err != nil {
			yield(Record{}, err)
			return
		}
		want := uint64(0)
		for i, name := range names {
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				yield(Record{}, err)
				return
			}
			next, _, ok := replaySegment(data, want, i == len(names)-1, yield)
			if !ok {
				return
			}
			want = next
		}
	}
}

// Replay yields the log's records in sequence order, bounded to what was
// appended before the call: records appended concurrently with the
// iteration are not yielded, and a concurrent append never makes the
// cursor misread a partially written tail. The log stays usable for
// appends throughout. Damage inside the bound decodes as a typed error
// (never ErrTornTail — the bound ends at a record boundary by
// construction).
func (l *Log) Replay() iter.Seq2[Record, error] {
	l.mu.Lock()
	segs := append([]segment{}, l.sealed...)
	segs = append(segs, l.activeSeg)
	l.mu.Unlock()
	return func(yield func(Record, error) bool) {
		want := uint64(0)
		for _, seg := range segs {
			data, err := readSegmentPrefix(seg.path, seg.size)
			if err != nil {
				yield(Record{}, err)
				return
			}
			next, _, ok := replaySegment(data, want, false, yield)
			if !ok {
				return
			}
			want = next
		}
	}
}

// readSegmentPrefix reads the first size bytes of path (the bound captured
// when the cursor was created).
func readSegmentPrefix(path string, size int64) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil, fmt.Errorf("wal: reading %s: %w", filepath.Base(path), err)
	}
	return buf, nil
}

// scanSegment validates one segment for Open: it decodes every record
// (discarding payloads) and reports the segment bookkeeping, the number of
// valid records, and — for the final segment — the byte offset a torn tail
// must be truncated at (-1 when the segment is clean).
func scanSegment(path string, last bool) (seg segment, recs int, tornAt int64, err error) {
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		return segment{}, 0, -1, rerr
	}
	seg = segment{path: path, size: int64(len(data))}
	tornAt = -1
	var derr error
	next, torn, _ := replaySegment(data, 0, last, func(r Record, e error) bool {
		if e != nil {
			derr = e
			return false
		}
		if recs == 0 {
			seg.firstSeq = r.Seq
		}
		seg.lastSeq = r.Seq
		recs++
		return true
	})
	if recs == 0 && int64(len(data)) >= segHeaderSize {
		// No record set firstSeq (a header-only segment, or a tear before the
		// first record): fall back to the header's declared value.
		seg.firstSeq, _ = decodeHeader(data)
	}
	if derr != nil {
		if last && torn >= 0 {
			return seg, recs, torn, nil // repairable: truncate at torn
		}
		return segment{}, 0, -1, derr
	}
	_ = next
	return seg, recs, -1, nil
}
