// Package server is the concurrent query service layer over the RIM-PPD
// engine: a process-wide sharded LRU solve cache, a Service that owns a
// database and deduplicates inference groups across the queries of a batch
// before fanning out to a bounded worker pool, and an HTTP/JSON front end
// (see Handler) served by cmd/hardqd.
package server

import (
	"container/list"
	"strings"
	"sync"
)

const defaultShards = 16

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	// Hits counts Gets that found an entry, across all shards.
	Hits uint64 `json:"hits"`
	// Misses counts Gets that found no entry.
	Misses uint64 `json:"misses"`
	// Evictions counts entries dropped by the per-shard LRU policy.
	Evictions uint64 `json:"evictions"`
	// Entries is the current entry count across all shards.
	Entries int `json:"entries"`
	// Capacity is the summed shard capacities.
	Capacity int `json:"capacity"`
}

// Cache is a sharded LRU map from inference-group keys (ppd.GroupKey) to
// probabilities. It implements ppd.SolveCache and is safe for concurrent
// use: keys hash to one of a fixed number of independently locked shards, so
// worker goroutines solving distinct groups rarely contend.
type Cache struct {
	shards []*cacheShard
}

type cacheShard struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key string
	p   float64
}

// NewCache builds a cache holding exactly capacity entries in total
// (minimum 1), spread over up to 16 independently locked shards. Shard
// capacities differ by at most one entry, so a hot shard may evict slightly
// before the whole cache is full.
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	shards := defaultShards
	if capacity < shards {
		shards = capacity
	}
	base, extra := capacity/shards, capacity%shards
	c := &Cache{shards: make([]*cacheShard, shards)}
	for i := range c.shards {
		per := base
		if i < extra {
			per++
		}
		c.shards[i] = &cacheShard{
			capacity: per,
			ll:       list.New(),
			items:    make(map[string]*list.Element),
		}
	}
	return c
}

// shard selects the key's shard by FNV-1a: deterministic across processes,
// so eviction behavior (and the CLI stats lines) is reproducible run to run.
func (c *Cache) shard(key string) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return c.shards[h%uint64(len(c.shards))]
}

// Get returns the cached probability for key and refreshes its recency.
func (c *Cache) Get(key string) (float64, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		s.misses++
		return 0, false
	}
	s.hits++
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).p, true
}

// Put stores the probability for key, evicting the least recently used entry
// of the key's shard when it is full.
func (c *Cache) Put(key string, p float64) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheEntry).p = p
		s.ll.MoveToFront(el)
		return
	}
	if s.ll.Len() >= s.capacity {
		old := s.ll.Back()
		s.ll.Remove(old)
		delete(s.items, old.Value.(*cacheEntry).key)
		s.evictions++
	}
	s.items[key] = s.ll.PushFront(&cacheEntry{key: key, p: p})
}

// PurgePrefix drops every entry whose key starts with prefix and returns
// how many were dropped; purged entries count as evictions in Stats. Like
// PlanCache.PurgePrefix it scans every shard, which is fine for its one
// caller (session ingest, which is rare relative to queries).
func (c *Cache) PurgePrefix(prefix string) int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; {
			next := el.Next()
			if e := el.Value.(*cacheEntry); strings.HasPrefix(e.key, prefix) {
				s.ll.Remove(el)
				delete(s.items, e.key)
				s.evictions++
				n++
			}
			el = next
		}
		s.mu.Unlock()
	}
	return n
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats sums hit/miss/eviction counters across shards.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{}
	for _, s := range c.shards {
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.Entries += s.ll.Len()
		st.Capacity += s.capacity
		s.mu.Unlock()
	}
	return st
}
