package server

import (
	"context"
	"sync"
	"testing"

	"probpref/internal/dataset"
	"probpref/internal/ppd"
)

// Concurrent DoBatch load over the solver arena pool (run with -race):
// every solve borrows a pooled arena with its ping-pong layers and
// per-worker scratch, so many batches in flight at once exercise arena
// recycling under contention. Results must be identical across all
// concurrent callers and match a cold sequential service.
func TestDoBatchConcurrentArenaReuse(t *testing.T) {
	db, err := dataset.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		doDemoQuery,
		`P(_, _; c1; c2), C(c1, D, _, _, _, _), C(c2, R, _, _, _, _)`,
		doUnionQuery,
		`P(_, _; c1; c2), C(c1, D, _, _, JD, _), C(c2, R, _, _, _, _)`,
	}
	reqs := make([]*ppd.Request, 0, 2*len(queries))
	for _, q := range queries {
		reqs = append(reqs, &ppd.Request{Kind: ppd.KindBool, Query: q})
		reqs = append(reqs, &ppd.Request{Kind: ppd.KindCount, Query: q})
	}

	// Sequential reference on a cache-disabled service.
	ref := New(db, Config{Workers: 1, CacheSize: -1})
	want, err := ref.DoBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := canonJSON(t, want)

	svc := New(db, Config{Workers: 8, CacheSize: -1})
	const goroutines = 8
	const rounds = 5
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				got, err := svc.DoBatch(context.Background(), reqs)
				if err != nil {
					t.Errorf("concurrent DoBatch: %v", err)
					return
				}
				if gotJSON := canonJSON(t, got); string(gotJSON) != string(wantJSON) {
					t.Errorf("concurrent DoBatch result diverged from sequential reference")
					return
				}
			}
		}()
	}
	wg.Wait()
}
