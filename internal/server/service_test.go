package server

import (
	"math"
	"sync"
	"testing"

	"probpref/internal/dataset"
	"probpref/internal/ppd"
)

const (
	q1 = `P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`
	q2 = `P(_, _; c1; c2), C(c1, D, _, _, _, _), C(c2, R, _, _, _, _)`
)

func figure1Service(t *testing.T, cfg Config) *Service {
	t.Helper()
	db, err := dataset.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	return New(db, cfg)
}

func TestEvalMatchesEngine(t *testing.T) {
	svc := figure1Service(t, Config{})
	eng := &ppd.Engine{DB: svc.DB()}
	want, err := eng.EvalUnion(ppd.MustParseUnion(q1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := svc.Eval(q1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Prob != want.Prob || got.Count != want.Count {
		t.Fatalf("service: prob=%v count=%v, engine: prob=%v count=%v",
			got.Prob, got.Count, want.Prob, want.Count)
	}
	// The second identical query is answered entirely from the cache.
	again, err := svc.Eval(q1)
	if err != nil {
		t.Fatal(err)
	}
	if again.Solves != 0 || again.CacheHits == 0 {
		t.Fatalf("repeat: solves=%d cacheHits=%d, want 0 and >0", again.Solves, again.CacheHits)
	}
	if again.Prob != want.Prob {
		t.Fatalf("cached prob %v != %v", again.Prob, want.Prob)
	}
}

// TestEvalBatchDedupBeatsIndependentEvals is the acceptance check of the
// service layer: a repeated-query batch performs strictly fewer solver
// invocations than the same queries evaluated by independent engines, with
// identical probabilities (exact method).
func TestEvalBatchDedupBeatsIndependentEvals(t *testing.T) {
	svc := figure1Service(t, Config{})
	eng := &ppd.Engine{DB: svc.DB()}
	want, err := eng.EvalUnion(ppd.MustParseUnion(q1))
	if err != nil {
		t.Fatal(err)
	}
	independent := 2 * want.Solves // two separate uncached Eval calls

	br, err := svc.EvalBatch([]string{q1, q1})
	if err != nil {
		t.Fatal(err)
	}
	if br.Solved >= independent {
		t.Fatalf("batch solved %d groups, independent evals solve %d", br.Solved, independent)
	}
	if br.Instances <= br.Groups {
		t.Fatalf("no cross-query dedup: instances=%d groups=%d", br.Instances, br.Groups)
	}
	for i, res := range br.Results {
		if res.Prob != want.Prob || res.Count != want.Count {
			t.Fatalf("result %d: prob=%v count=%v, want prob=%v count=%v",
				i, res.Prob, res.Count, want.Prob, want.Count)
		}
	}
	if br.Results[0].Solves != want.Solves || br.Results[1].Solves != 0 {
		t.Fatalf("attribution: q0 solves=%d (want %d), q1 solves=%d (want 0)",
			br.Results[0].Solves, want.Solves, br.Results[1].Solves)
	}

	// A second batch over the same queries is answered from the cache alone.
	br2, err := svc.EvalBatch([]string{q1, q1})
	if err != nil {
		t.Fatal(err)
	}
	if br2.Solved != 0 || br2.CacheHits != br.Groups {
		t.Fatalf("warm batch: solved=%d cacheHits=%d, want 0 and %d", br2.Solved, br2.CacheHits, br.Groups)
	}
	if br2.Results[0].Prob != want.Prob {
		t.Fatalf("warm prob %v != %v", br2.Results[0].Prob, want.Prob)
	}
}

func TestEvalBatchMixedQueries(t *testing.T) {
	svc := figure1Service(t, Config{})
	eng := &ppd.Engine{DB: svc.DB()}
	for _, q := range []string{q1, q2} {
		want, err := eng.EvalUnion(ppd.MustParseUnion(q))
		if err != nil {
			t.Fatal(err)
		}
		br, err := svc.EvalBatch([]string{q})
		if err != nil {
			t.Fatal(err)
		}
		if got := br.Results[0]; math.Abs(got.Prob-want.Prob) > 1e-12 {
			t.Fatalf("query %q: %v != %v", q, got.Prob, want.Prob)
		}
	}
}

func TestEvalBatchErrors(t *testing.T) {
	svc := figure1Service(t, Config{})
	if _, err := svc.EvalBatch([]string{"not a query("}); err == nil {
		t.Fatal("want parse error")
	}
	if _, err := svc.Eval("nope("); err == nil {
		t.Fatal("want parse error")
	}
	if _, _, err := svc.TopK("nope(", 1, 1); err == nil {
		t.Fatal("want parse error")
	}
}

func TestTopKSharesCacheAcrossRequests(t *testing.T) {
	svc := figure1Service(t, Config{})
	top1, diag1, err := svc.TopK(q1, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if diag1.ExactSolves == 0 {
		t.Fatal("cold top-k should solve")
	}
	top2, diag2, err := svc.TopK(q1, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if diag2.ExactSolves != 0 || diag2.CacheHits == 0 {
		t.Fatalf("warm top-k: exact=%d cacheHits=%d", diag2.ExactSolves, diag2.CacheHits)
	}
	for i := range top1 {
		if top1[i].Prob != top2[i].Prob {
			t.Fatalf("rank %d: %v != %v", i, top1[i].Prob, top2[i].Prob)
		}
	}
}

func TestTopKBatch(t *testing.T) {
	svc := figure1Service(t, Config{})
	reqs := []TopKRequest{{Query: q1, K: 2, Bound: 1}, {Query: q1, K: 2, Bound: 1}, {Query: q2, K: 3, Bound: 0}}
	out, err := svc.TopKBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d results", len(out))
	}
	if len(out[0].Top) != 2 || len(out[2].Top) != 3 {
		t.Fatalf("k not honored: %d, %d", len(out[0].Top), len(out[2].Top))
	}
	for i := range out[0].Top {
		if out[0].Top[i].Prob != out[1].Top[i].Prob {
			t.Fatalf("identical requests disagree at rank %d", i)
		}
	}
}

func TestCacheDisabled(t *testing.T) {
	svc := figure1Service(t, Config{CacheSize: -1})
	if svc.Cache() != nil {
		t.Fatal("cache should be disabled")
	}
	res, err := svc.Eval(q1)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := svc.Eval(q1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheHits != 0 || res2.Solves != res.Solves {
		t.Fatalf("disabled cache still hit: %+v", res2)
	}
}

func TestServiceStats(t *testing.T) {
	svc := figure1Service(t, Config{})
	if _, err := svc.Eval(q1); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.EvalBatch([]string{q1, q2}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.TopK(q1, 2, 1); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Evals != 3 || st.TopKs != 1 || st.Batches != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Solves == 0 || st.Cache.Hits == 0 {
		t.Fatalf("expected solves and cache hits: %+v", st)
	}
}

// TestServiceConcurrentRace hammers every service entry point from many
// goroutines sharing one solve cache; run it under -race. Exact methods must
// produce identical probabilities regardless of interleaving.
func TestServiceConcurrentRace(t *testing.T) {
	svc := figure1Service(t, Config{Workers: 4, CacheSize: 8}) // tiny cache forces evictions
	eng := &ppd.Engine{DB: svc.DB()}
	want := make(map[string]float64)
	for _, q := range []string{q1, q2} {
		res, err := eng.EvalUnion(ppd.MustParseUnion(q))
		if err != nil {
			t.Fatal(err)
		}
		want[q] = res.Prob
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				q := q1
				if (g+i)%2 == 0 {
					q = q2
				}
				switch i % 3 {
				case 0:
					res, err := svc.Eval(q)
					if err != nil {
						t.Error(err)
						return
					}
					if res.Prob != want[q] {
						t.Errorf("Eval(%q) = %v, want %v", q, res.Prob, want[q])
						return
					}
				case 1:
					br, err := svc.EvalBatch([]string{q1, q2, q})
					if err != nil {
						t.Error(err)
						return
					}
					if br.Results[2].Prob != want[q] {
						t.Errorf("EvalBatch(%q) = %v, want %v", q, br.Results[2].Prob, want[q])
						return
					}
				case 2:
					if _, _, err := svc.TopK(q, 2, 1); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// Benchmarks: the cached service versus a bare engine on a repeated query.
// The warm-cache path performs zero solver invocations per evaluation.

func BenchmarkEngineEvalUncached(b *testing.B) {
	db, err := dataset.Figure1()
	if err != nil {
		b.Fatal(err)
	}
	uq := ppd.MustParseUnion(q1)
	eng := &ppd.Engine{DB: db}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.EvalUnion(uq); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServiceEvalCached(b *testing.B) {
	db, err := dataset.Figure1()
	if err != nil {
		b.Fatal(err)
	}
	svc := New(db, Config{})
	if _, err := svc.Eval(q1); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Eval(q1); err != nil {
			b.Fatal(err)
		}
	}
}
