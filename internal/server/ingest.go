package server

import (
	"fmt"

	"probpref/internal/ppd"
)

// IngestSessionJSON is the wire form of one session to ingest: a center
// ranking over item ids plus Mallows (phi) or Generalized Mallows (phis)
// dispersion. It is the shared session wire form of ppd — the same schema
// the p-relation JSON files of ppdgen and the write-ahead-log records of
// the registry use, so an acked batch is logged byte-compatibly with how
// it arrived.
type IngestSessionJSON = ppd.SessionJSON

// IngestRequest is the body of POST /v1/sessions.
type IngestRequest struct {
	// Model names the registry model to grow; "" selects DefaultModel.
	Model string `json:"model,omitempty"`
	// Pref names the p-relation of the model the sessions append to.
	Pref string `json:"pref"`
	// Sessions are the sessions to append, in order.
	Sessions []IngestSessionJSON `json:"sessions"`
}

// IngestResponse is the wire form of POST /v1/sessions.
type IngestResponse struct {
	// Model is the grown model's name (resolved, never "").
	Model string `json:"model"`
	// Pref is the p-relation the sessions were appended to.
	Pref string `json:"pref"`
	// Appended counts the sessions this request added.
	Appended int `json:"appended"`
	// Sessions is the model's new total session count across p-relations.
	Sessions int `json:"sessions"`
	// PurgedSolves counts solve-cache entries invalidated for the model.
	PurgedSolves int `json:"purged_solves"`
	// PurgedPlans counts compiled-plan cache entries invalidated for the
	// model.
	PurgedPlans int `json:"purged_plans"`
}

// IngestSessions appends sessions to a model's p-relation and invalidates
// the model's cache namespaces. The append swaps the model's database under
// the registry's build lock, so queries that already opened the model finish
// on the pre-ingest snapshot while new opens see the grown database; the
// purge then drops the model's solve- and plan-cache entries exactly once.
// (Both key spaces are content-addressed — solve keys embed the session
// model, plan keys the reference ranking and union shape — so stale entries
// could never produce wrong answers; the purge reclaims capacity the grown
// model's new working set would otherwise have to evict organically.)
// Sessions with identical parameters share one model instance, preserving
// the grouping behavior of the evaluator, exactly like ppd.LoadPrefJSON.
func (s *Service) IngestSessions(req *IngestRequest) (*IngestResponse, error) {
	model := req.Model
	if model == "" {
		model = DefaultModel
	}
	if req.Pref == "" {
		return nil, fmt.Errorf("missing pref")
	}
	if len(req.Sessions) == 0 {
		return nil, fmt.Errorf("empty sessions")
	}
	parsed, err := ppd.ParseSessionsJSON(req.Sessions)
	if err != nil {
		return nil, err
	}
	total, err := s.reg.Append(model, req.Pref, parsed)
	if err != nil {
		return nil, err
	}
	resp := &IngestResponse{Model: model, Pref: req.Pref, Appended: len(parsed), Sessions: total}
	ns := model + nsSep
	if s.cache != nil {
		resp.PurgedSolves = s.cache.PurgePrefix(ns)
	}
	if s.plans != nil {
		resp.PurgedPlans = s.plans.PurgePrefix(ns)
	}
	if s.ingestPurgeHook != nil {
		s.ingestPurgeHook(model)
	}
	return resp, nil
}
