package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"sync/atomic"
)

// Admission control: the query and ingest endpoints run behind a
// max-in-flight gate with a bounded wait queue. A request that finds all
// slots busy waits for one; a request that finds the queue full too is
// shed immediately with 503 Service Unavailable and a Retry-After hint,
// so a saturated daemon keeps answering cheaply instead of queueing
// without bound. Probe and management endpoints (/healthz, /models,
// /stats) bypass the gate — an operator must be able to observe and
// drain a saturated process, and the cluster coordinator's health checks
// must keep reaching it.

// DefaultMaxInFlight is the admitted-request bound used when
// Config.MaxInFlight is 0.
const DefaultMaxInFlight = 256

// DefaultMaxQueue is the admission-queue bound used when Config.MaxQueue
// is 0.
const DefaultMaxQueue = 256

// DefaultRetryAfterSeconds is the Retry-After hint on shed responses used
// when Config.RetryAfterSeconds is 0.
const DefaultRetryAfterSeconds = 1

// gate is the admission semaphore: slots bounds the requests running,
// queued bounds the requests waiting for a slot.
type gate struct {
	slots      chan struct{}
	maxQueue   int64
	queued     atomic.Int64
	sheds      atomic.Uint64
	retryAfter int
}

func newGate(maxInFlight, maxQueue, retryAfter int) *gate {
	return &gate{
		slots:      make(chan struct{}, maxInFlight),
		maxQueue:   int64(maxQueue),
		retryAfter: retryAfter,
	}
}

// admit blocks until a slot is free or the caller's context ends; it
// reports false — after counting the shed — when the wait queue is
// already full. A false return means the caller must not release.
func (g *gate) admit(ctx context.Context) bool {
	select {
	case g.slots <- struct{}{}:
		return true
	default:
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		g.sheds.Add(1)
		return false
	}
	defer g.queued.Add(-1)
	select {
	case g.slots <- struct{}{}:
		return true
	case <-ctx.Done():
		// The client gave up while queued; the 503 it may still receive is
		// moot, but the shed is real back-pressure worth counting.
		g.sheds.Add(1)
		return false
	}
}

// release frees the slot taken by a successful admit.
func (g *gate) release() { <-g.slots }

// inFlight reports the currently admitted request count.
func (g *gate) inFlight() int { return len(g.slots) }

// gated wraps a handler behind the admission gate; with admission control
// disabled it returns the handler unchanged.
func (s *Service) gated(h http.HandlerFunc) http.HandlerFunc {
	if s.gate == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.gate.admit(r.Context()) {
			shedResponse(w, s.gate.retryAfter)
			return
		}
		defer s.gate.release()
		h(w, r)
	}
}

// shedResponse writes the overload rejection: 503 with a Retry-After
// header, echoed in the JSON body for clients that only read bodies. The
// cluster coordinator treats exactly this status as retriable-to-replica.
func shedResponse(w http.ResponseWriter, retryAfter int) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(map[string]any{
		"error":       "service overloaded, retry later",
		"retry_after": retryAfter,
	})
}
