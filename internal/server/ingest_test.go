package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"probpref/internal/ppd"
	"probpref/internal/registry"
)

// Ingest tests: POST /v1/sessions appends sessions to a live model while
// queries keep running. The registry swaps the model's database under its
// build lock, so requests that already opened a handle finish on the
// pre-ingest snapshot while later opens see the grown model; the service
// then purges the model's cache namespaces exactly once. Run under -race
// (CI does).

// figIngest builds an ingest request appending one figure1-shaped session
// per key (4-item Mallows center, session key (voter, day)).
func figIngest(model string, keys ...string) *IngestRequest {
	req := &IngestRequest{Model: model, Pref: "P"}
	for i, k := range keys {
		req.Sessions = append(req.Sessions, IngestSessionJSON{
			Key:   []string{k, fmt.Sprintf("%d/7", i+7)},
			Sigma: []int{0, 1, 2, 3},
			Phi:   0.4,
		})
	}
	return req
}

// sessionCount asks the model for every session via an exhaustive topk.
func sessionCount(t *testing.T, svc *Service, model string) int {
	t.Helper()
	resp, err := svc.Do(context.Background(), &ppd.Request{
		Kind: ppd.KindTopK, Query: q1, K: 100, Model: model,
	})
	if err != nil {
		t.Fatal(err)
	}
	return len(resp.Top)
}

func TestIngestSessionsGrowsModel(t *testing.T) {
	svc := figure1Service(t, Config{})
	if got := sessionCount(t, svc, ""); got != 3 {
		t.Fatalf("fresh figure1 has %d sessions, want 3", got)
	}
	resp, err := svc.IngestSessions(figIngest("", "Eve", "Frank"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Model != DefaultModel || resp.Pref != "P" || resp.Appended != 2 || resp.Sessions != 5 {
		t.Fatalf("ingest response %+v, want default/P 2 appended of 5", resp)
	}
	if got := sessionCount(t, svc, ""); got != 5 {
		t.Fatalf("model has %d sessions after ingest, want 5", got)
	}
}

func TestIngestValidates(t *testing.T) {
	svc := figure1Service(t, Config{})
	cases := []struct {
		name string
		req  *IngestRequest
	}{
		{"missing pref", &IngestRequest{Sessions: figIngest("", "Eve").Sessions}},
		{"empty sessions", &IngestRequest{Pref: "P"}},
		{"unknown pref", figIngestPref("nope", "Eve")},
		{"not a permutation", &IngestRequest{Pref: "P", Sessions: []IngestSessionJSON{
			{Key: []string{"Eve", "7/7"}, Sigma: []int{0, 0, 1, 2}, Phi: 0.4},
		}}},
		{"key arity", &IngestRequest{Pref: "P", Sessions: []IngestSessionJSON{
			{Key: []string{"only-one"}, Sigma: []int{0, 1, 2, 3}, Phi: 0.4},
		}}},
	}
	for _, tc := range cases {
		if _, err := svc.IngestSessions(tc.req); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
	if _, err := svc.IngestSessions(figIngest("ghost", "Eve")); !errors.Is(err, registry.ErrNotFound) {
		t.Errorf("unknown model: want registry.ErrNotFound, got %v", err)
	}
	if got := sessionCount(t, svc, ""); got != 3 {
		t.Fatalf("rejected ingests changed the model: %d sessions", got)
	}
}

func figIngestPref(pref string, keys ...string) *IngestRequest {
	req := figIngest("", keys...)
	req.Pref = pref
	return req
}

// TestIngestPurgesNamespacesOnce: ingesting into one model must invalidate
// exactly that model's solve- and plan-cache namespaces, exactly once — a
// sibling model's warm entries keep hitting.
func TestIngestPurgesNamespacesOnce(t *testing.T) {
	reg := registry.New()
	for _, n := range []string{"a", "b"} {
		if err := reg.Register(registry.Spec{Name: n, Dataset: "figure1", Preload: true}); err != nil {
			t.Fatal(err)
		}
	}
	svc := NewMulti(reg, Config{})
	var purged []string
	svc.ingestPurgeHook = func(model string) { purged = append(purged, model) }

	warm := func(model string) {
		t.Helper()
		for i := 0; i < 2; i++ {
			if _, err := svc.Do(context.Background(), &ppd.Request{Kind: ppd.KindBool, Query: q1, Model: model}); err != nil {
				t.Fatal(err)
			}
		}
	}
	solves := func(model string) int {
		t.Helper()
		resp, err := svc.Do(context.Background(), &ppd.Request{Kind: ppd.KindBool, Query: q1, Model: model})
		if err != nil {
			t.Fatal(err)
		}
		return resp.Solves
	}
	warm("a")
	warm("b")
	if n := solves("a"); n != 0 {
		t.Fatalf("warm model a still solves %d groups", n)
	}

	resp, err := svc.IngestSessions(figIngest("a", "Eve"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.PurgedSolves == 0 {
		t.Fatal("ingest purged no solve-cache entries from a warm namespace")
	}
	if resp.PurgedPlans == 0 {
		t.Fatal("ingest purged no plan-cache entries from a warm namespace")
	}
	if len(purged) != 1 || purged[0] != "a" {
		t.Fatalf("purge hook ran %v, want exactly one purge of a", purged)
	}
	if n := solves("b"); n != 0 {
		t.Fatalf("ingest into a evicted b's cache entries: %d solves", n)
	}
	if n := solves("a"); n == 0 {
		t.Fatal("a's namespace was not invalidated: query served entirely from stale cache")
	}
}

// TestIngestDuringStreamKeepsOldSnapshot holds a /v1/query NDJSON stream
// open mid-row with the row hook, ingests through POST /v1/sessions while
// the stream is pinned, and asserts the stream completes with the
// pre-ingest session set while a fresh query sees the grown model.
func TestIngestDuringStreamKeepsOldSnapshot(t *testing.T) {
	svc := figure1Service(t, Config{Workers: 2})
	var purges atomic.Int32
	svc.ingestPurgeHook = func(string) { purges.Add(1) }
	firstRow := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	svc.streamRowHook = func(context.Context) {
		once.Do(func() { close(firstRow); <-release })
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body := fmt.Sprintf(`{"kind":"topk","query":%q,"k":10,"bound":0,"stream":true}`, q1)
	resp, err := srv.Client().Post(srv.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("missing summary line")
	}
	if !sc.Scan() {
		t.Fatal("missing first row")
	}
	rows := 1
	<-firstRow // the handler is now pinned between rows

	ing, err := srv.Client().Post(srv.URL+"/v1/sessions", "application/json",
		strings.NewReader(`{"pref":"P","sessions":[{"key":["Eve","7/7"],"sigma":[0,1,2,3],"phi":0.4}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var ir IngestResponse
	if err := json.NewDecoder(ing.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	ing.Body.Close()
	if ing.StatusCode != 200 || ir.Appended != 1 || ir.Sessions != 4 {
		t.Fatalf("mid-stream ingest: status %d, response %+v", ing.StatusCode, ir)
	}
	if n := purges.Load(); n != 1 {
		t.Fatalf("cache namespaces purged %d times, want exactly 1", n)
	}

	close(release)
	for sc.Scan() {
		if strings.Contains(sc.Text(), `"error"`) {
			t.Fatalf("stream ended in error: %s", sc.Text())
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != 3 {
		t.Fatalf("in-flight stream delivered %d rows, want the 3 pre-ingest sessions", rows)
	}

	after, err := srv.Client().Post(srv.URL+"/v1/query", "application/json",
		strings.NewReader(fmt.Sprintf(`{"kind":"topk","query":%q,"k":10,"bound":0}`, q1)))
	if err != nil {
		t.Fatal(err)
	}
	defer after.Body.Close()
	var vr V1Response
	if err := json.NewDecoder(after.Body).Decode(&vr); err != nil {
		t.Fatal(err)
	}
	if vr.Result == nil || len(vr.Result.Top) != 4 {
		t.Fatalf("post-ingest query: %+v, want 4 topk rows", vr.Result)
	}
}

// TestConcurrentIngestAndQueries hammers Append swaps against query opens:
// 4 ingest goroutines grow the model while 8 query goroutines evaluate.
// Correctness here is the race detector plus the final census.
func TestConcurrentIngestAndQueries(t *testing.T) {
	svc := figure1Service(t, Config{Workers: 4})
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if _, err := svc.IngestSessions(figIngest("", fmt.Sprintf("W%d-%d", g, i))); err != nil {
					errCh <- err
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := svc.Do(ctx, &ppd.Request{Kind: ppd.KindBool, Query: q1}); err != nil {
					errCh <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := sessionCount(t, svc, ""); got != 3+4*3 {
		t.Fatalf("final model has %d sessions, want %d", got, 3+4*3)
	}
}

// TestIngestHTTPErrors pins the endpoint's status mapping: unknown model
// 404, malformed body and validation failures 400.
func TestIngestHTTPErrors(t *testing.T) {
	svc := figure1Service(t, Config{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	cases := []struct {
		name, body string
		status     int
	}{
		{"unknown model", `{"model":"ghost","pref":"P","sessions":[{"key":["E","7/7"],"sigma":[0,1,2,3],"phi":0.4}]}`, 404},
		{"missing pref", `{"sessions":[{"key":["E","7/7"],"sigma":[0,1,2,3],"phi":0.4}]}`, 400},
		{"unknown field", `{"pref":"P","nope":1,"sessions":[]}`, 400},
		{"bad sigma", `{"pref":"P","sessions":[{"key":["E","7/7"],"sigma":[9,9,9,9],"phi":0.4}]}`, 400},
	}
	for _, tc := range cases {
		resp, err := srv.Client().Post(srv.URL+"/v1/sessions", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
}
