package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"time"

	"probpref/internal/consensus"
	"probpref/internal/ppd"
)

// This file is the versioned HTTP surface: POST /v1/query accepts the wire
// form of the unified ppd.Request — one endpoint for every query kind,
// single or batch, with NDJSON streaming of top-k session rows — and the
// legacy /eval and /topk endpoints are thin adapters over the same path
// (see http.go).

// V1Request is the wire form of one unified query request (the body of
// POST /v1/query, or one element of its "requests" batch).
type V1Request struct {
	// Kind is the query class:
	// bool | count | topk | aggregate | countdist | consensus.
	Kind string `json:"kind"`
	// Query is the conjunctive query, or a "|"-union of CQs.
	Query string `json:"query"`
	// Model names the catalog model to run against ("" = default).
	Model string `json:"model,omitempty"`
	// Method forces the inference solver ("" keeps the daemon's -method).
	Method string `json:"method,omitempty"`
	// Target selects the consensus answer for kind consensus:
	// map | median | topk (required for that kind).
	Target string `json:"target,omitempty"`
	// K is how many sessions a topk request returns (required for topk),
	// or the cutoff of consensus target topk.
	K int `json:"k,omitempty"`
	// Bound is the number of topk upper-bound edges (0 = naive).
	Bound int `json:"bound,omitempty"`
	// TimeoutMS arms a per-request deadline: with the adaptive method the
	// planner budgets each group from it (degrading to sampling with error
	// bars); otherwise the evaluation aborts when it expires.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Seed reseeds the sampling methods for this request (0 keeps the
	// daemon's -seed).
	Seed int64 `json:"seed,omitempty"`
	// AggRel names the o-relation providing the aggregated attribute
	// (aggregate kind only).
	AggRel string `json:"agg_rel,omitempty"`
	// AggAttr names the numeric attribute of AggRel to aggregate
	// (aggregate kind only).
	AggAttr string `json:"agg_attr,omitempty"`
	// PerSession includes per-session probabilities in the result.
	PerSession bool `json:"per_session,omitempty"`
	// Stream switches a single request to an NDJSON response that emits one
	// session row per line: the topk rows for kind topk, the per-session
	// probabilities for kinds bool, count and countdist (not valid in a
	// batch, or for kind aggregate).
	Stream bool `json:"stream,omitempty"`
}

// V1Body is the body of POST /v1/query: either one request inline, or a
// batch of requests under "requests".
type V1Body struct {
	V1Request
	// Requests is the batch form; when set, the inline fields must be
	// empty.
	Requests []V1Request `json:"requests,omitempty"`
}

// AggregateJSON is the wire form of an aggregation answer.
type AggregateJSON struct {
	// Sum is E[sum of the attribute over satisfying sessions].
	Sum float64 `json:"sum"`
	// Count is E[number of satisfying sessions].
	Count float64 `json:"count"`
	// Avg is Sum / Count; omitted when Count is 0 (undefined).
	Avg *float64 `json:"avg,omitempty"`
	// Sessions counts sessions with a defined attribute value.
	Sessions int `json:"sessions"`
	// Rows lists the per-session (probability, value) terms the aggregates
	// fold over, in session order; included only with per_session set. A
	// distributed coordinator refolds concatenated partition rows through
	// ppd.FoldAggregateRows, reproducing Sum/Count/Avg bit-for-bit.
	Rows []AggRowJSON `json:"rows,omitempty"`
}

// AggRowJSON is the wire form of one session's aggregation term.
type AggRowJSON struct {
	// Prob is the session's satisfaction probability.
	Prob float64 `json:"prob"`
	// Value is the session's numeric attribute value.
	Value float64 `json:"value"`
}

// CountDistJSON is the wire form of an exact count distribution.
type CountDistJSON struct {
	// N is the number of sessions (the distribution's support is 0..N).
	N int `json:"n"`
	// Mean is the expected count (the Count-Session answer).
	Mean float64 `json:"mean"`
	// StdDev is the standard deviation of the count.
	StdDev float64 `json:"stddev"`
	// Mode is the most probable count.
	Mode int `json:"mode"`
	// Median is the 0.5-quantile of the count.
	Median int `json:"median"`
	// Lo95 is the lower bound of the central 95% interval.
	Lo95 int `json:"lo95"`
	// Hi95 is the upper bound of the central 95% interval.
	Hi95 int `json:"hi95"`
	// PMF[k] = Pr(exactly k sessions satisfy Q).
	PMF []float64 `json:"pmf"`
}

// V1Result is the unified wire form of one /v1/query answer: the sections
// a kind does not produce are omitted.
type V1Result struct {
	// Kind echoes the request's query class.
	Kind string `json:"kind"`
	// Prob is the Boolean confidence Pr(Q|D).
	Prob float64 `json:"prob"`
	// Count is the Count-Session expectation.
	Count float64 `json:"count"`
	// LiveSessions counts sessions with a non-empty grounded union.
	LiveSessions int `json:"live_sessions"`
	// Solves counts fresh solver invocations behind the answer.
	Solves int `json:"solves"`
	// CacheHits counts inference groups answered from the shared cache.
	CacheHits int `json:"cache_hits"`
	// Top lists the k most probable sessions, best first (topk kind).
	Top []SessionProbJSON `json:"top,omitempty"`
	// PerSession lists per-session probabilities (with per_session set).
	PerSession []SessionProbJSON `json:"per_session,omitempty"`
	// Diag reports the work of a topk evaluation.
	Diag *TopKDiagJSON `json:"diag,omitempty"`
	// Plan reports the adaptive planner's routing and confidence
	// half-widths (method "adaptive" only).
	Plan *PlanJSON `json:"plan,omitempty"`
	// Aggregate is the aggregation answer (aggregate kind).
	Aggregate *AggregateJSON `json:"aggregate,omitempty"`
	// CountDist is the exact count distribution (countdist kind).
	CountDist *CountDistJSON `json:"countdist,omitempty"`
	// Consensus is the consensus answer (consensus kind).
	Consensus *ConsensusJSON `json:"consensus,omitempty"`
}

// V1Response is the JSON (non-streaming) response of POST /v1/query.
type V1Response struct {
	// Result is the single-request answer.
	Result *V1Result `json:"result,omitempty"`
	// Results holds the batch answers, in request order.
	Results []V1Result `json:"results,omitempty"`
	// Batch reports the grouped path's dedup accounting (batch form only;
	// zeroes when the batch fanned out request-by-request).
	Batch *BatchJSON `json:"batch,omitempty"`
}

// ToRequest converts the wire request into the typed ppd.Request, with the
// same validation (and error texts) the /v1/query handler applies. The
// cluster coordinator validates incoming requests through it so a malformed
// request is rejected identically whether it hits a shard or the
// coordinator.
func (vr *V1Request) ToRequest() (*ppd.Request, error) { return vr.toRequest() }

// toRequest converts the wire request into the typed ppd.Request.
func (vr *V1Request) toRequest() (*ppd.Request, error) {
	kind, err := ppd.ParseKind(vr.Kind)
	if err != nil {
		return nil, err
	}
	req := &ppd.Request{
		Kind:       kind,
		Query:      vr.Query,
		Model:      vr.Model,
		K:          vr.K,
		BoundEdges: vr.Bound,
		Seed:       vr.Seed,
		AggRel:     vr.AggRel,
		AggAttr:    vr.AggAttr,
	}
	if vr.Method != "" {
		if req.Method, err = ppd.ParseMethod(vr.Method); err != nil {
			return nil, err
		}
	}
	if vr.Target != "" {
		if req.ConsensusTarget, err = consensus.ParseTarget(vr.Target); err != nil {
			return nil, err
		}
	}
	if vr.TimeoutMS < 0 {
		return nil, fmt.Errorf("timeout_ms must be non-negative")
	}
	req.Deadline = time.Duration(vr.TimeoutMS) * time.Millisecond
	return req, nil
}

// NewV1Result converts a unified response into its wire form, the same
// conversion the /v1/query handler applies. The cluster coordinator reuses
// it so shard-local and merged answers share one serialization.
func NewV1Result(resp *ppd.Response, perSession bool) V1Result {
	return v1Result(resp, perSession)
}

// v1Result converts a unified response into its wire form.
func v1Result(resp *ppd.Response, perSession bool) V1Result {
	out := V1Result{
		Kind:         resp.Kind.String(),
		Prob:         resp.Prob,
		Count:        resp.Count,
		LiveSessions: len(resp.PerSession),
		Solves:       resp.Solves,
		CacheHits:    resp.CacheHits,
	}
	for _, sp := range resp.Top {
		out.Top = append(out.Top, SessionProbJSON{Session: sp.Session.Key, Prob: sp.Prob})
	}
	if perSession {
		for _, sp := range resp.PerSession {
			out.PerSession = append(out.PerSession, SessionProbJSON{Session: sp.Session.Key, Prob: sp.Prob})
		}
	}
	if d := resp.Diag; d != nil {
		out.Diag = &TopKDiagJSON{
			BoundSolves:       d.BoundSolves,
			ExactSolves:       d.ExactSolves,
			SessionsEvaluated: d.SessionsEvaluated,
			CacheHits:         d.CacheHits,
		}
	}
	if p := resp.Plan; p != nil {
		out.Plan = &PlanJSON{
			ExactGroups:    p.ExactGroups,
			SampledGroups:  p.SampledGroups,
			Samples:        p.Samples,
			MaxHalfWidth:   p.MaxHalfWidth,
			ProbHalfWidth:  p.ProbHalfWidth,
			CountHalfWidth: p.CountHalfWidth,
			Methods:        p.Methods,
		}
	}
	if a := resp.Agg; a != nil {
		out.Aggregate = &AggregateJSON{Sum: a.Sum, Count: a.Count, Sessions: a.Sessions}
		if !math.IsNaN(a.Avg) {
			avg := a.Avg
			out.Aggregate.Avg = &avg
		}
		if perSession {
			for _, r := range a.Rows {
				out.Aggregate.Rows = append(out.Aggregate.Rows, AggRowJSON{Prob: r.Prob, Value: r.Value})
			}
		}
	}
	if c := resp.Consensus; c != nil {
		out.Consensus = newConsensusJSON(c, perSession)
	}
	if d := resp.Dist; d != nil {
		out.CountDist = &CountDistJSON{
			N:      d.N(),
			Mean:   d.Mean(),
			StdDev: d.StdDev(),
			Mode:   d.Mode(),
			Median: d.Quantile(0.5),
			Lo95:   d.Quantile(0.025),
			Hi95:   d.Quantile(0.975),
			PMF:    d.PMF,
		}
	}
	return out
}

// handleV1Query serves POST /v1/query: the unified query endpoint. A body
// with "requests" answers the batch through DoBatch; an inline request
// answers through Do, as NDJSON when "stream" is set.
func (s *Service) handleV1Query(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var body V1Body
	if err := dec.Decode(&body); err != nil {
		serveJSON(w, func() (any, error) { return nil, fmt.Errorf("decoding body: %w", err) })
		return
	}
	if len(body.Requests) > 0 {
		serveJSON(w, func() (any, error) { return s.v1Batch(r.Context(), body) })
		return
	}
	req, err := body.V1Request.toRequest()
	if err != nil {
		serveJSON(w, func() (any, error) { return nil, err })
		return
	}
	if body.Stream {
		s.v1Stream(w, r, req)
		return
	}
	serveJSON(w, func() (any, error) {
		resp, err := s.Do(r.Context(), req)
		if err != nil {
			return nil, err
		}
		res := v1Result(resp, body.PerSession)
		return &V1Response{Result: &res}, nil
	})
}

// v1Batch answers the batch form of POST /v1/query.
func (s *Service) v1Batch(ctx context.Context, body V1Body) (*V1Response, error) {
	// Any inline request field alongside "requests" is rejected rather than
	// silently ignored: a top-level model or timeout_ms that did not apply
	// would return well-formed but wrong answers.
	if body.V1Request != (V1Request{}) {
		return nil, fmt.Errorf("batch body must not mix inline request fields with requests; set fields per request")
	}
	reqs := make([]*ppd.Request, len(body.Requests))
	for i := range body.Requests {
		if body.Requests[i].Stream {
			return nil, fmt.Errorf("query %d: stream is only valid for a single request", i+1)
		}
		req, err := body.Requests[i].toRequest()
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i+1, err)
		}
		reqs[i] = req
	}
	br, err := s.DoBatch(ctx, reqs)
	if err != nil {
		return nil, err
	}
	out := &V1Response{Batch: &BatchJSON{
		Groups:    br.Groups,
		Instances: br.Instances,
		Solved:    br.Solved,
		CacheHits: br.CacheHits,
	}}
	for i, resp := range br.Responses {
		out.Results = append(out.Results, v1Result(resp, body.Requests[i].PerSession))
	}
	return out, nil
}

// v1Stream answers one request as NDJSON: the first line is the V1Result
// summary (diagnostics and plan included, session rows elided), each
// following line is one session row — the topk rows for kind topk, the
// per-session probabilities otherwise — flushed as produced so consumers
// read results incrementally. A client disconnect (or the request deadline)
// stops the stream between rows with a final {"error": ...} line.
func (s *Service) v1Stream(w http.ResponseWriter, r *http.Request, req *ppd.Request) {
	switch req.Kind {
	case ppd.KindTopK, ppd.KindBool, ppd.KindCount, ppd.KindCountDist:
	default:
		serveJSON(w, func() (any, error) {
			return nil, fmt.Errorf("stream is not valid for kind %s (topk, bool, count and countdist stream session rows)", req.Kind)
		})
		return
	}
	// One deadline covers the whole exchange — evaluation and emission —
	// so the budget is armed here instead of inside Do (whose internal
	// deadline would end when the evaluation returns, leaving the
	// streaming phase ungoverned).
	ctx := r.Context()
	if req.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Deadline)
		defer cancel()
		detached := *req
		detached.Deadline = 0
		req = &detached
	}
	resp, err := s.Do(ctx, req)
	if err != nil {
		serveJSON(w, func() (any, error) { return nil, err })
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	head := v1Result(resp, false)
	head.Top = nil // rows follow line by line
	enc.Encode(head)
	flush()
	for sp, err := range resp.Sessions(ctx) {
		if err != nil {
			enc.Encode(map[string]string{"error": err.Error()})
			flush()
			return
		}
		if err := enc.Encode(SessionProbJSON{Session: sp.Session.Key, Prob: sp.Prob}); err != nil {
			return // client gone; stop emitting
		}
		flush()
		if s.streamRowHook != nil {
			s.streamRowHook(ctx)
		}
	}
}
