package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// Tests for the versioned unified endpoint: POST /v1/query must serve all
// five kinds, the batch form, NDJSON streaming, and map bad requests to
// 400s with the compile errors' enumerated-value texts.

func postV1(t *testing.T, srv *httptest.Server, body string) (int, []byte) {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func TestV1QueryAllKinds(t *testing.T) {
	svc := figure1Service(t, Config{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	cases := []struct {
		name  string
		body  string
		check func(t *testing.T, res V1Result)
	}{
		{"bool", `{"kind":"bool","query":` + jsonStr(doDemoQuery) + `}`, func(t *testing.T, res V1Result) {
			if res.Kind != "bool" || res.Prob <= 0 || res.Prob > 1 {
				t.Errorf("bad bool result: %+v", res)
			}
		}},
		{"count", `{"kind":"count","query":` + jsonStr(doDemoQuery) + `,"per_session":true}`, func(t *testing.T, res V1Result) {
			if res.Count <= 0 || len(res.PerSession) == 0 {
				t.Errorf("bad count result: %+v", res)
			}
		}},
		{"topk", `{"kind":"topk","query":` + jsonStr(doDemoQuery) + `,"k":2,"bound":1}`, func(t *testing.T, res V1Result) {
			if len(res.Top) != 2 || res.Diag == nil {
				t.Errorf("bad topk result: %+v", res)
			}
		}},
		{"aggregate", `{"kind":"aggregate","query":` + jsonStr(doDemoQuery) + `,"agg_rel":"V","agg_attr":"age"}`, func(t *testing.T, res V1Result) {
			if res.Aggregate == nil || res.Aggregate.Sessions == 0 || res.Aggregate.Avg == nil {
				t.Errorf("bad aggregate result: %+v", res)
			}
		}},
		{"countdist", `{"kind":"countdist","query":` + jsonStr(doDemoQuery) + `}`, func(t *testing.T, res V1Result) {
			if res.CountDist == nil || res.CountDist.N != 3 || len(res.CountDist.PMF) != 4 {
				t.Errorf("bad countdist result: %+v", res)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postV1(t, srv, tc.body)
			if code != 200 {
				t.Fatalf("status %d:\n%s", code, body)
			}
			var out V1Response
			if err := json.Unmarshal(body, &out); err != nil {
				t.Fatalf("unmarshal: %v\n%s", err, body)
			}
			if out.Result == nil {
				t.Fatalf("missing result:\n%s", body)
			}
			tc.check(t, *out.Result)
		})
	}
}

func jsonStr(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

func TestV1QueryBatch(t *testing.T) {
	svc := figure1Service(t, Config{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	body := `{"requests":[
		{"kind":"bool","query":` + jsonStr(doDemoQuery) + `},
		{"kind":"countdist","query":` + jsonStr(doDemoQuery) + `}
	]}`
	code, raw := postV1(t, srv, body)
	if code != 200 {
		t.Fatalf("status %d:\n%s", code, raw)
	}
	var out V1Response
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 || out.Batch == nil {
		t.Fatalf("bad batch response:\n%s", raw)
	}
	if out.Batch.Groups == 0 || out.Batch.Instances == 0 {
		t.Errorf("homogeneous batch should report grouped accounting: %+v", out.Batch)
	}
	if out.Results[1].CountDist == nil {
		t.Errorf("countdist result missing distribution:\n%s", raw)
	}
}

func TestV1QueryModelRouting(t *testing.T) {
	svc := figure1Service(t, Config{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	if code, _ := postV1(t, srv, `{"kind":"bool","query":`+jsonStr(doDemoQuery)+`,"model":"default"}`); code != 200 {
		t.Errorf("explicit default model: status %d", code)
	}
	if code, _ := postV1(t, srv, `{"kind":"bool","query":`+jsonStr(doDemoQuery)+`,"model":"ghost"}`); code != 404 {
		t.Errorf("unknown model: status %d, want 404", code)
	}
}

func TestV1QueryErrors(t *testing.T) {
	svc := figure1Service(t, Config{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	cases := []struct {
		body string
		want string // substring of the error text
	}{
		{`{"kind":"nope","query":"x"}`, "unknown kind"},
		{`{"kind":"nope","query":"x"}`, "bool | count | topk | aggregate | countdist"},
		{`{"kind":"bool"}`, "no query"},
		{`{"kind":"bool","query":"x","method":"nope"}`, "unknown method"},
		{`{"kind":"bool","query":` + jsonStr(doDemoQuery) + `,"k":3}`, "only valid for kind topk"},
		{`{"kind":"topk","query":` + jsonStr(doDemoQuery) + `}`, "requires K"},
		{`{"kind":"bool","query":` + jsonStr(doDemoQuery) + `,"timeout_ms":-1}`, "timeout_ms"},
		{`{"kind":"aggregate","query":` + jsonStr(doDemoQuery) + `,"agg_rel":"r","agg_attr":"a","stream":true}`, "not valid for kind aggregate"},
		{`{"bogus":1}`, "unknown field"},
		{`{"requests":[{"kind":"bool","query":"x"}],"kind":"bool"}`, "must not mix"},
		{`{"requests":[{"kind":"bool","query":"x"}],"model":"polls"}`, "must not mix"},
		{`{"requests":[{"kind":"bool","query":"x"}],"timeout_ms":5}`, "must not mix"},
		{`{"requests":[{"kind":"topk","query":` + jsonStr(doDemoQuery) + `,"k":1,"stream":true}]}`, "single request"},
	}
	for _, tc := range cases {
		code, body := postV1(t, srv, tc.body)
		if code != 400 {
			t.Errorf("%s: status %d, want 400\n%s", tc.body, code, body)
			continue
		}
		if !strings.Contains(string(body), tc.want) {
			t.Errorf("%s: error %s does not mention %q", tc.body, body, tc.want)
		}
	}
	// Wrong method: /v1/query is POST-only.
	resp, err := srv.Client().Get(srv.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Errorf("GET /v1/query should not be served, got 200")
	}
}

// TestV1QueryStreamNDJSON: the stream flag answers a topk request as
// NDJSON — a summary line (diagnostics, no rows) followed by one session
// row per line.
func TestV1QueryStreamNDJSON(t *testing.T) {
	svc := figure1Service(t, Config{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/v1/query", "application/json",
		strings.NewReader(`{"kind":"topk","query":`+jsonStr(doDemoQuery)+`,"k":3,"stream":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("missing summary line")
	}
	var head V1Result
	if err := json.Unmarshal(sc.Bytes(), &head); err != nil {
		t.Fatalf("summary line: %v\n%s", err, sc.Text())
	}
	if head.Kind != "topk" || head.Diag == nil || len(head.Top) != 0 {
		t.Fatalf("bad summary line: %s", sc.Text())
	}
	var rows []SessionProbJSON
	for sc.Scan() {
		var row SessionProbJSON
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("row: %v\n%s", err, sc.Text())
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("streamed %d rows, want 3", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Prob > rows[i-1].Prob {
			t.Errorf("rows out of order: %v after %v", rows[i].Prob, rows[i-1].Prob)
		}
	}
}

// TestV1MatchesLegacyEndpoints: the legacy /eval and /topk adapters and
// /v1/query answer the same query with the same numbers.
func TestV1MatchesLegacyEndpoints(t *testing.T) {
	svc := figure1Service(t, Config{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	var legacy EvalResponse
	if code := get(t, srv, "/eval?q="+queryParam(doDemoQuery), &legacy); code != 200 {
		t.Fatalf("legacy eval status %d", code)
	}
	code, raw := postV1(t, srv, `{"kind":"bool","query":`+jsonStr(doDemoQuery)+`}`)
	if code != 200 {
		t.Fatalf("v1 status %d", code)
	}
	var v1 V1Response
	if err := json.Unmarshal(raw, &v1); err != nil {
		t.Fatal(err)
	}
	if v1.Result.Prob != legacy.Results[0].Prob || v1.Result.Count != legacy.Results[0].Count {
		t.Errorf("v1 (%v, %v) != legacy /eval (%v, %v)",
			v1.Result.Prob, v1.Result.Count, legacy.Results[0].Prob, legacy.Results[0].Count)
	}

	var legacyTopK TopKResponse
	if code := get(t, srv, "/topk?q="+queryParam(doDemoQuery)+"&k=2&bound=1", &legacyTopK); code != 200 {
		t.Fatalf("legacy topk status %d", code)
	}
	code, raw = postV1(t, srv, `{"kind":"topk","query":`+jsonStr(doDemoQuery)+`,"k":2,"bound":1}`)
	if code != 200 {
		t.Fatalf("v1 topk status %d", code)
	}
	var v1top V1Response
	if err := json.Unmarshal(raw, &v1top); err != nil {
		t.Fatal(err)
	}
	if len(v1top.Result.Top) != len(legacyTopK.Results[0].Top) {
		t.Fatalf("row counts differ: %d vs %d", len(v1top.Result.Top), len(legacyTopK.Results[0].Top))
	}
	for i := range v1top.Result.Top {
		if v1top.Result.Top[i].Prob != legacyTopK.Results[0].Top[i].Prob {
			t.Errorf("row %d: %v != %v", i, v1top.Result.Top[i].Prob, legacyTopK.Results[0].Top[i].Prob)
		}
	}
}
