package server

import (
	"fmt"

	"probpref/internal/consensus"
	"probpref/internal/ppd"
)

// This file is the wire form of the consensus query kind: the JSON shape of
// a consensus answer in POST /v1/query responses, plus the re-solve helper
// the cluster coordinator uses to merge partition rows. Both the shard-local
// conversion and the coordinator merge build the answer through the same
// consensusJSON construction, so the two tiers serialize one way.

// ConsensusItemJSON is one entry of a consensus top-k answer on the wire.
type ConsensusItemJSON struct {
	// Item is the item's catalog key.
	Item string `json:"item"`
	// Prob is the population probability the item ranks within the top k.
	Prob float64 `json:"prob"`
	// Half is the 95% confidence half-width of Prob (omitted when exact).
	Half float64 `json:"half_width,omitempty"`
}

// ConsensusJSON is the wire form of a consensus answer. Which sections are
// present depends on the target: ranking and prob for map; ranking,
// expected_tau and pairwise (plus pair_half_width when sampled) for median;
// items for topk.
type ConsensusJSON struct {
	// Target echoes the requested consensus target.
	Target string `json:"target"`
	// Sampled reports whether the answer was rejection-sampled.
	Sampled bool `json:"sampled"`
	// LiveSessions counts sessions with positive conditioned mass.
	LiveSessions int `json:"live_sessions"`
	// Samples totals the Monte Carlo draws across sessions (sampled only).
	Samples int64 `json:"samples,omitempty"`
	// Accepts totals the accepted draws across sessions (sampled only).
	Accepts int64 `json:"accepts,omitempty"`
	// Ranking is the consensus ranking as item keys, best first (map and
	// median targets).
	Ranking []string `json:"ranking,omitempty"`
	// Prob is the population probability of Ranking (map target).
	Prob *float64 `json:"prob,omitempty"`
	// ExpectedTau is the expected Kendall tau distance of Ranking to the
	// population (median target).
	ExpectedTau *float64 `json:"expected_tau,omitempty"`
	// Pairwise is the population pairwise-marginal matrix indexed by item
	// id: Pairwise[a][b] = Pr(a before b) (median target).
	Pairwise [][]float64 `json:"pairwise,omitempty"`
	// PairHalf carries the 95% half-widths of sampled Pairwise entries.
	PairHalf [][]float64 `json:"pair_half_width,omitempty"`
	// Items is the consensus top-k, most certain first (topk target).
	Items []ConsensusItemJSON `json:"items,omitempty"`
	// Domain maps item ids to catalog keys (Domain[i] names item i), so
	// Pairwise rows and columns can be decoded.
	Domain []string `json:"domain"`
	// Rows holds the per-session sufficient statistics in session order;
	// included only with per_session set. A distributed coordinator refolds
	// concatenated partition rows through MergeConsensus, reproducing the
	// answer bit for bit.
	Rows []consensus.Row `json:"per_session,omitempty"`
}

// newConsensusJSON converts the engine's consensus result into its wire
// form, including the per-session rows only when the client asked for them.
func newConsensusJSON(c *ppd.ConsensusResult, perSession bool) *ConsensusJSON {
	out := consensusJSON(&c.Result, c.Domain)
	if perSession {
		out.Rows = c.Rows
	}
	return out
}

// consensusJSON is the shared answer construction of the shard-local
// conversion and the coordinator merge.
func consensusJSON(res *consensus.Result, domain []string) *ConsensusJSON {
	out := &ConsensusJSON{
		Target:       res.Target.String(),
		Sampled:      res.Sampled,
		LiveSessions: res.LiveSessions,
		Samples:      res.Samples,
		Accepts:      res.Accepts,
		Pairwise:     res.Pairwise,
		PairHalf:     res.PairHalf,
		Domain:       domain,
	}
	if res.Ranking != nil {
		keys := make([]string, len(res.Ranking))
		for i, it := range res.Ranking {
			keys[i] = domain[it]
		}
		out.Ranking = keys
		switch res.Target {
		case consensus.TargetMAP:
			p := res.Prob
			out.Prob = &p
		case consensus.TargetMedian:
			t := res.ExpectedTau
			out.ExpectedTau = &t
		}
	}
	for _, it := range res.Items {
		out.Items = append(out.Items, ConsensusItemJSON{Item: domain[it.Item], Prob: it.Prob, Half: it.Half})
	}
	return out
}

// MergeConsensus re-solves concatenated partition rows into the merged
// consensus answer: the cluster coordinator's counterpart of the engine's
// fold. consensus.Solve is a deterministic sequential pass over rows, and
// encoding/json round-trips the rows' float64 numerators and integer
// counters exactly, so rows concatenated in partition order (= session
// order) reproduce a single process's answer byte for byte. The returned
// form carries the full rows; the coordinator strips them when the client
// did not ask for per-session detail.
func MergeConsensus(target string, domain []string, k int, rows []consensus.Row) (*ConsensusJSON, error) {
	t, err := consensus.ParseTarget(target)
	if err != nil {
		return nil, fmt.Errorf("server: merging consensus: %w", err)
	}
	res, err := consensus.Solve(rows, consensus.Params{Target: t, M: len(domain), K: k})
	if err != nil {
		return nil, fmt.Errorf("server: merging consensus: %w", err)
	}
	out := consensusJSON(res, domain)
	out.Rows = rows
	return out, nil
}
