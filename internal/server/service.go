package server

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"

	"probpref/internal/pattern"
	"probpref/internal/pool"
	"probpref/internal/ppd"
	"probpref/internal/registry"
	"probpref/internal/rim"
)

// DefaultModel is the model name the single-database constructor (New)
// registers its database under, and the name requests that leave the model
// unspecified resolve to.
const DefaultModel = "default"

// Config tunes a Service.
type Config struct {
	// Method selects the per-session inference solver (default MethodAuto).
	Method ppd.Method
	// Workers bounds the worker pool used for batch fan-out and for the
	// per-engine group parallelism of single queries (default 4).
	Workers int
	// CacheSize is the solve-cache capacity in entries; 0 means the default
	// (4096) and a negative value disables the cache.
	CacheSize int
	// Seed is the base seed for the sampling methods; per inference group
	// the engines derive seed+groupIndex, so batch answers are deterministic
	// for a fixed seed (default 1).
	Seed int64
}

// DefaultCacheSize is the solve-cache capacity used when Config.CacheSize
// is 0.
const DefaultCacheSize = 4096

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.CacheSize == 0 {
		c.CacheSize = DefaultCacheSize
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// evalError marks a failure that happened while evaluating an already
// parsed request, as opposed to a parse/validation failure; the HTTP layer
// maps it to a 500 instead of a 400. (Grounding errors inside the engine —
// e.g. a query naming an unknown relation — are conservatively classified
// as evaluation failures too.)
type evalError struct{ err error }

func (e *evalError) Error() string { return e.err.Error() }
func (e *evalError) Unwrap() error { return e.err }

// Stats is a point-in-time snapshot of a Service's activity.
type Stats struct {
	// Evals counts single queries served by Eval plus queries served through
	// EvalBatch.
	Evals uint64 `json:"evals"`
	// TopKs likewise counts TopK plus TopKBatch queries.
	TopKs uint64 `json:"topks"`
	// Batches counts EvalBatch/TopKBatch calls.
	Batches uint64 `json:"batches"`
	// Solves counts solver invocations performed on behalf of the service
	// (exact and bound solves, after grouping, dedup and cache hits).
	Solves uint64 `json:"solves"`
	// Cache reports solve-cache effectiveness (zero when disabled).
	Cache CacheStats `json:"cache"`
}

// Service is a concurrent query front end over a catalog of RIM-PPD
// models: it owns a model registry and a process-wide solve cache shared by
// every request (with keys namespaced per model, so tenants never observe
// each other's entries), and its batch APIs deduplicate inference groups
// across queries before fanning out to a bounded worker pool. All methods
// are safe for concurrent use.
//
// The single-database constructor New serves one model named DefaultModel;
// NewMulti serves every model of a registry and routes each request by its
// model name ("" selects DefaultModel).
type Service struct {
	reg   *registry.Registry
	cache *Cache
	cfg   Config

	evals   atomic.Uint64
	topks   atomic.Uint64
	batches atomic.Uint64
	solves  atomic.Uint64
}

// New builds a Service over the single database db, registered under
// DefaultModel. The db must not be mutated while the service is in use.
func New(db *ppd.DB, cfg Config) *Service {
	reg := registry.New()
	if err := reg.RegisterDB(DefaultModel, db, ""); err != nil {
		// DefaultModel is a valid name and the registry is empty; only a nil
		// db can fail, which is a programming error at the call site.
		panic(err)
	}
	return NewMulti(reg, cfg)
}

// NewMulti builds a Service over a model registry. The registry may keep
// changing while the service runs (manifest preloads, POST /models,
// DELETE /models/{name}); each request opens its model for the duration of
// the evaluation, so deletions never interrupt in-flight queries.
func NewMulti(reg *registry.Registry, cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{reg: reg, cfg: cfg}
	if cfg.CacheSize > 0 {
		s.cache = NewCache(cfg.CacheSize)
	}
	return s
}

// Registry returns the served model catalog.
func (s *Service) Registry() *registry.Registry { return s.reg }

// DB returns the DefaultModel database (nil when no model of that name is
// registered, as in manifest-driven multi-model deployments).
func (s *Service) DB() *ppd.DB {
	h, err := s.reg.Open(DefaultModel)
	if err != nil {
		return nil
	}
	defer h.Close()
	return h.DB()
}

// open resolves a request's model name ("" means DefaultModel) to a
// reference-counted handle; the caller must Close it when the evaluation
// finishes.
func (s *Service) open(model string) (*registry.Handle, error) {
	if model == "" {
		model = DefaultModel
	}
	return s.reg.Open(model)
}

// nsCache namespaces solve-cache keys by model name so two models never
// share entries — even two models built from identical specs, whose
// GroupKeys would otherwise collide by construction. It implements
// ppd.SolveCache over the service's shared sharded Cache.
type nsCache struct {
	prefix string
	c      *Cache
}

// nsSep separates the model namespace from the group key; model names are
// restricted to URL-safe tokens, so the NUL byte cannot occur in a name.
const nsSep = "\x00"

func (n nsCache) Get(key string) (float64, bool) { return n.c.Get(n.prefix + key) }
func (n nsCache) Put(key string, p float64)      { n.c.Put(n.prefix+key, p) }

// Cache returns the shared solve cache (nil when disabled).
func (s *Service) Cache() *Cache { return s.cache }

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	st := Stats{
		Evals:   s.evals.Load(),
		TopKs:   s.topks.Load(),
		Batches: s.batches.Load(),
		Solves:  s.solves.Load(),
	}
	if s.cache != nil {
		st.Cache = s.cache.Stats()
	}
	return st
}

// engine builds a request-scoped engine over one opened model, sharing the
// service cache under the model's namespace. Engines are cheap; one per
// request keeps RNG and solver statistics unshared.
func (s *Service) engine(seed int64, h *registry.Handle) *ppd.Engine {
	e := &ppd.Engine{
		DB:      h.DB(),
		Method:  s.cfg.Method,
		Rng:     rand.New(rand.NewSource(seed)),
		Workers: s.cfg.Workers,
	}
	if s.cache != nil {
		e.Cache = nsCache{prefix: h.Name() + nsSep, c: s.cache}
	}
	return e
}

// Eval parses and evaluates one query (a CQ or a union of CQs) against
// DefaultModel, sharing the service's solve cache with every other request.
func (s *Service) Eval(query string) (*ppd.EvalResult, error) {
	return s.EvalModelCtx(context.Background(), "", query)
}

// EvalCtx is Eval with cancellation and deadline awareness: a done ctx
// (client disconnect, deadline) aborts in-flight solver layers and sampling
// rounds, and MethodAdaptive budgets each group from the ctx deadline.
func (s *Service) EvalCtx(ctx context.Context, query string) (*ppd.EvalResult, error) {
	return s.EvalModelCtx(ctx, "", query)
}

// EvalModelCtx is EvalCtx routed to the named model ("" means
// DefaultModel). The model stays open — immune to catalog deletion — until
// the evaluation returns.
func (s *Service) EvalModelCtx(ctx context.Context, model, query string) (*ppd.EvalResult, error) {
	uq, err := ppd.ParseUnion(query)
	if err != nil {
		return nil, err
	}
	h, err := s.open(model)
	if err != nil {
		return nil, err
	}
	defer h.Close()
	res, err := s.engine(s.cfg.Seed, h).EvalUnionCtx(ctx, uq)
	if err != nil {
		return nil, &evalError{err}
	}
	s.evals.Add(1)
	s.solves.Add(uint64(res.Solves))
	return res, nil
}

// TopK parses and answers the Most-Probable-Session query top(Q, k) against
// DefaultModel with boundEdges upper-bound edges (0 = naive).
func (s *Service) TopK(query string, k, boundEdges int) ([]ppd.SessionProb, *ppd.TopKDiag, error) {
	return s.TopKModelCtx(context.Background(), "", query, k, boundEdges)
}

// TopKCtx is TopK with cancellation and deadline awareness.
func (s *Service) TopKCtx(ctx context.Context, query string, k, boundEdges int) ([]ppd.SessionProb, *ppd.TopKDiag, error) {
	return s.TopKModelCtx(ctx, "", query, k, boundEdges)
}

// TopKModelCtx is TopKCtx routed to the named model ("" means
// DefaultModel).
func (s *Service) TopKModelCtx(ctx context.Context, model, query string, k, boundEdges int) ([]ppd.SessionProb, *ppd.TopKDiag, error) {
	uq, err := ppd.ParseUnion(query)
	if err != nil {
		return nil, nil, err
	}
	h, err := s.open(model)
	if err != nil {
		return nil, nil, err
	}
	defer h.Close()
	top, diag, err := s.engine(s.cfg.Seed, h).TopKUnionCtx(ctx, uq, k, boundEdges)
	if err != nil {
		return nil, nil, &evalError{err}
	}
	s.topks.Add(1)
	s.solves.Add(uint64(diag.ExactSolves + diag.BoundSolves))
	return top, diag, nil
}

// BatchResult reports an EvalBatch: one EvalResult per query (in request
// order) plus batch-level dedup accounting.
type BatchResult struct {
	// Results holds one evaluation per query, in request order.
	Results []*ppd.EvalResult
	// Groups counts distinct (model, union) inference groups across the
	// whole batch.
	Groups int
	// Instances counts group references before cross-query dedup
	// (Instances - Groups were saved by sharing within the batch).
	Instances int
	// Solved counts groups actually sent to a solver.
	Solved int
	// CacheHits counts groups answered from the shared cache.
	// Solved + CacheHits == Groups.
	CacheHits int
}

// EvalBatch evaluates a batch of queries as one unit: every query is
// grounded first, the per-session inference groups are deduplicated across
// all queries of the batch (the cross-query generalization of the paper's
// Section 6.4 grouping), cached results are taken from the shared solve
// cache, and only the remaining distinct groups are solved by a bounded
// worker pool. Identical or overlapping queries therefore cost one solver
// invocation per distinct group, not per query.
//
// For the exact methods, per-query probabilities are identical to evaluating
// each query alone. For the sampling methods each group's seed derives from
// its batch-wide group index (and warm cache entries replay earlier
// estimates), so estimates are deterministic per batch+seed but can differ
// from a standalone evaluation of the same query. A query's
// EvalResult.Solves / CacheHits attribute each group to the first query of
// the batch that needed it.
func (s *Service) EvalBatch(queries []string) (*BatchResult, error) {
	return s.EvalBatchModelCtx(context.Background(), "", queries)
}

// EvalBatchCtx is EvalBatch with cancellation and deadline awareness: once
// ctx is done the worker pool stops claiming groups, in-flight solver
// layers and sampling rounds abort, and the batch returns ctx's error; with
// MethodAdaptive each group's exact-vs-sampling routing is budgeted from
// the ctx deadline.
func (s *Service) EvalBatchCtx(ctx context.Context, queries []string) (*BatchResult, error) {
	return s.EvalBatchModelCtx(ctx, "", queries)
}

// EvalBatchModelCtx is EvalBatchCtx routed to the named model ("" means
// DefaultModel): the whole batch is grounded against that model's database
// and its cache traffic stays inside the model's namespace.
func (s *Service) EvalBatchModelCtx(ctx context.Context, model string, queries []string) (*BatchResult, error) {
	h, err := s.open(model)
	if err != nil {
		return nil, err
	}
	defer h.Close()
	type ref struct {
		sess *ppd.Session
		gi   int
	}
	type batchGroup struct {
		sm    rim.SessionModel
		u     pattern.Union
		key   string
		first int // index of the first query referencing the group
	}
	var (
		groupOf = make(map[string]int)
		groups  []batchGroup
		perQ    = make([][]ref, len(queries))
		br      = &BatchResult{Results: make([]*ppd.EvalResult, len(queries))}
	)
	// With the adaptive method an expired deadline degrades remaining groups
	// to sampling instead of aborting the batch: the grounding loop and the
	// pool fan-out run deadline-detached (cancellation still aborts), while
	// each group's solve sees the original ctx for budgeting.
	adaptive := s.cfg.Method == ppd.MethodAdaptive
	loopCtx := ctx
	if adaptive {
		var cancel context.CancelFunc
		loopCtx, cancel = ppd.DetachDeadline(ctx)
		defer cancel()
	}
	for qi, src := range queries {
		if err := loopCtx.Err(); err != nil {
			return nil, &evalError{context.Cause(loopCtx)}
		}
		uq, err := ppd.ParseUnion(src)
		if err != nil {
			return nil, fmt.Errorf("server: query %d: %w", qi+1, err)
		}
		grounders, err := ppd.UnionGrounders(h.DB(), uq)
		if err != nil {
			return nil, &evalError{fmt.Errorf("server: query %d: %w", qi+1, err)}
		}
		for _, sess := range grounders[0].Pref().Sessions {
			u, err := ppd.GroundMerged(grounders, sess)
			if err != nil {
				return nil, &evalError{fmt.Errorf("server: query %d: %w", qi+1, err)}
			}
			if len(u) == 0 {
				continue
			}
			key := ppd.GroupKey(s.cfg.Method, sess.Model, u)
			gi, ok := groupOf[key]
			if !ok {
				gi = len(groups)
				groupOf[key] = gi
				groups = append(groups, batchGroup{sm: sess.Model, u: u, key: key, first: qi})
			}
			perQ[qi] = append(perQ[qi], ref{sess: sess, gi: gi})
			br.Instances++
		}
	}
	br.Groups = len(groups)

	// Resolve groups from the shared cache (inside the model's namespace),
	// then fan the misses out to the worker pool. Seeds derive from the
	// group index so sampling answers are deterministic for a fixed
	// Config.Seed regardless of pool scheduling.
	ns := h.Name() + nsSep
	probs := make([]float64, len(groups))
	reports := make([]ppd.SolveReport, len(groups))
	cached := make([]bool, len(groups))
	var pending []int
	for gi := range groups {
		if s.cache != nil {
			if p, ok := s.cache.Get(ns + groups[gi].key); ok {
				probs[gi] = p
				cached[gi] = true
				br.CacheHits++
				continue
			}
		}
		pending = append(pending, gi)
	}
	br.Solved = len(pending)
	err = pool.RunCtx(loopCtx, len(pending), s.cfg.Workers, func(pi int) error {
		gi := pending[pi]
		eng := s.engine(s.cfg.Seed+int64(gi), h)
		eng.Workers = 1 // the pool is the parallelism
		p, rep, err := eng.SolveUnionCtx(ctx, groups[gi].sm, groups[gi].u)
		if err != nil {
			return fmt.Errorf("server: query %d: %w", groups[gi].first+1, err)
		}
		probs[gi] = p
		reports[gi] = rep
		if s.cache != nil {
			s.cache.Put(ns+groups[gi].key, p)
		}
		return nil
	})
	if err != nil {
		return nil, &evalError{err}
	}

	// Aggregate per query with the engine's own aggregation. Solves and
	// CacheHits attribute each group's cost to the first query that
	// referenced it (batch accounting); the adaptive plan instead reflects
	// each query's own view — every distinct freshly-solved group the query
	// references counts toward its routing totals, matching the propagated
	// half-widths, so shared groups appear in every referencing query's
	// plan (cache hits replay a point answer and contribute no width).
	for qi := range queries {
		per := make([]ppd.SessionProb, len(perQ[qi]))
		hw := make([]float64, len(perQ[qi]))
		seen := make(map[int]bool)
		for i, r := range perQ[qi] {
			per[i] = ppd.SessionProb{Session: r.sess, Prob: probs[r.gi]}
			if !cached[r.gi] {
				hw[i] = reports[r.gi].HalfWidth
			}
		}
		br.Results[qi] = ppd.BoolAggregate(per)
		if adaptive {
			plan := ppd.BatchPlan(per, hw)
			for _, r := range perQ[qi] {
				if !cached[r.gi] && !seen[r.gi] {
					seen[r.gi] = true
					plan.Note(reports[r.gi])
				}
			}
			br.Results[qi].Plan = plan
		}
	}
	for gi, g := range groups {
		if cached[gi] {
			br.Results[g.first].CacheHits++
		} else {
			br.Results[g.first].Solves++
		}
	}
	s.batches.Add(1)
	s.evals.Add(uint64(len(queries)))
	s.solves.Add(uint64(br.Solved))
	return br, nil
}

// TopKRequest is one query of a TopKBatch.
type TopKRequest struct {
	// Query is the conjunctive query (or union of CQs).
	Query string
	// K is how many sessions to return.
	K int
	// Bound is the number of upper-bound edges (0 = naive).
	Bound int
}

// TopKResult is one answer of a TopKBatch.
type TopKResult struct {
	// Top lists the k most probable sessions, best first.
	Top []ppd.SessionProb
	// Diag reports the work the top-k evaluation performed.
	Diag *ppd.TopKDiag
}

// TopKBatch answers a batch of Most-Probable-Session queries on the bounded
// worker pool. Each query runs the standard top-k machinery (its early
// termination depends on per-query bound ordering, so exact solves are not
// pre-deduplicated across queries); cross-query sharing still happens
// through the shared solve cache, so repeated or overlapping queries reuse
// each other's exact per-group results.
func (s *Service) TopKBatch(reqs []TopKRequest) ([]*TopKResult, error) {
	return s.TopKBatchModelCtx(context.Background(), "", reqs)
}

// TopKBatchCtx is TopKBatch with cancellation and deadline awareness (see
// EvalBatchCtx).
func (s *Service) TopKBatchCtx(ctx context.Context, reqs []TopKRequest) ([]*TopKResult, error) {
	return s.TopKBatchModelCtx(ctx, "", reqs)
}

// TopKBatchModelCtx is TopKBatchCtx routed to the named model ("" means
// DefaultModel).
func (s *Service) TopKBatchModelCtx(ctx context.Context, model string, reqs []TopKRequest) ([]*TopKResult, error) {
	h, err := s.open(model)
	if err != nil {
		return nil, err
	}
	defer h.Close()
	parsed := make([]*ppd.UnionQuery, len(reqs))
	for i, r := range reqs {
		uq, err := ppd.ParseUnion(r.Query)
		if err != nil {
			return nil, fmt.Errorf("server: query %d: %w", i+1, err)
		}
		parsed[i] = uq
	}
	// As in EvalBatchCtx: with the adaptive method an expired deadline
	// degrades per-query groups to sampling instead of aborting the fan-out.
	loopCtx := ctx
	if s.cfg.Method == ppd.MethodAdaptive {
		var cancel context.CancelFunc
		loopCtx, cancel = ppd.DetachDeadline(ctx)
		defer cancel()
	}
	out := make([]*TopKResult, len(reqs))
	var total atomic.Uint64
	err = pool.RunCtx(loopCtx, len(reqs), s.cfg.Workers, func(ri int) error {
		eng := s.engine(s.cfg.Seed+int64(ri), h)
		eng.Workers = 1 // the pool is the parallelism
		top, diag, err := eng.TopKUnionCtx(ctx, parsed[ri], reqs[ri].K, reqs[ri].Bound)
		if err != nil {
			return fmt.Errorf("server: query %d: %w", ri+1, err)
		}
		out[ri] = &TopKResult{Top: top, Diag: diag}
		total.Add(uint64(diag.ExactSolves + diag.BoundSolves))
		return nil
	})
	if err != nil {
		return nil, &evalError{err}
	}
	s.batches.Add(1)
	s.topks.Add(uint64(len(reqs)))
	s.solves.Add(total.Load())
	return out, nil
}
