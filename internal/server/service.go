package server

import (
	"context"
	"math/rand"
	"sync/atomic"

	"probpref/internal/ppd"
	"probpref/internal/registry"
)

// DefaultModel is the model name the single-database constructor (New)
// registers its database under, and the name requests that leave the model
// unspecified resolve to.
const DefaultModel = "default"

// Config tunes a Service.
type Config struct {
	// Method selects the per-session inference solver (default MethodAuto).
	Method ppd.Method
	// Workers bounds the worker pool used for batch fan-out and for the
	// per-engine group parallelism of single queries (default 4).
	Workers int
	// CacheSize is the solve-cache capacity in entries; 0 means the default
	// (4096) and a negative value disables the cache.
	CacheSize int
	// PlanCacheSize is the compiled-union-plan cache capacity in entries; 0
	// means the default (512) and a negative value disables the cache.
	// Plans are per union shape, not per session, so a modest capacity
	// covers a large working set of queries.
	PlanCacheSize int
	// Seed is the base seed for the sampling methods; per inference group
	// the engines derive seed+groupIndex, so batch answers are deterministic
	// for a fixed seed (default 1).
	Seed int64
	// MaxInFlight bounds the concurrently admitted query and ingest
	// requests of the HTTP handler; 0 means DefaultMaxInFlight, a negative
	// value disables admission control entirely.
	MaxInFlight int
	// MaxQueue bounds the requests waiting for an admission slot; one more
	// is shed with 503 + Retry-After. 0 means DefaultMaxQueue, a negative
	// value sheds as soon as every slot is busy (no queue).
	MaxQueue int
	// RetryAfterSeconds is the Retry-After hint on shed responses (default
	// DefaultRetryAfterSeconds).
	RetryAfterSeconds int
}

// DefaultCacheSize is the solve-cache capacity used when Config.CacheSize
// is 0.
const DefaultCacheSize = 4096

// DefaultPlanCacheSize is the compiled-plan cache capacity used when
// Config.PlanCacheSize is 0.
const DefaultPlanCacheSize = 512

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.CacheSize == 0 {
		c.CacheSize = DefaultCacheSize
	}
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = DefaultPlanCacheSize
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = DefaultMaxInFlight
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = DefaultMaxQueue
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.RetryAfterSeconds <= 0 {
		c.RetryAfterSeconds = DefaultRetryAfterSeconds
	}
	return c
}

// evalError marks a failure that happened while evaluating an already
// parsed request, as opposed to a parse/validation failure; the HTTP layer
// maps it to a 500 instead of a 400. (Grounding errors inside the engine —
// e.g. a query naming an unknown relation — are conservatively classified
// as evaluation failures too.)
type evalError struct{ err error }

func (e *evalError) Error() string { return e.err.Error() }
func (e *evalError) Unwrap() error { return e.err }

// Stats is a point-in-time snapshot of a Service's activity.
type Stats struct {
	// Evals counts single queries served by Eval plus queries served through
	// EvalBatch.
	Evals uint64 `json:"evals"`
	// TopKs likewise counts TopK plus TopKBatch queries.
	TopKs uint64 `json:"topks"`
	// Batches counts EvalBatch/TopKBatch calls.
	Batches uint64 `json:"batches"`
	// Solves counts solver invocations performed on behalf of the service
	// (exact and bound solves, after grouping, dedup and cache hits).
	Solves uint64 `json:"solves"`
	// Cache reports solve-cache effectiveness (zero when disabled).
	Cache CacheStats `json:"cache"`
	// PlanCache reports compiled-plan cache effectiveness (zero when
	// disabled). A hit skips recompiling a union shape; the solved
	// probabilities themselves live in Cache.
	PlanCache CacheStats `json:"plan_cache"`
	// Sheds counts requests rejected with 503 by the admission gate.
	Sheds uint64 `json:"sheds"`
	// InFlight is the currently admitted request count (a gauge).
	InFlight int `json:"in_flight"`
	// Queued is the current admission-queue depth (a gauge).
	Queued int `json:"queued"`
}

// Service is a concurrent query front end over a catalog of RIM-PPD
// models: it owns a model registry and a process-wide solve cache shared by
// every request (with keys namespaced per model, so tenants never observe
// each other's entries), and its batch APIs deduplicate inference groups
// across queries before fanning out to a bounded worker pool. All methods
// are safe for concurrent use.
//
// The single-database constructor New serves one model named DefaultModel;
// NewMulti serves every model of a registry and routes each request by its
// model name ("" selects DefaultModel).
type Service struct {
	reg   *registry.Registry
	cache *Cache
	plans *PlanCache
	cfg   Config
	gate  *gate

	evals   atomic.Uint64
	topks   atomic.Uint64
	batches atomic.Uint64
	solves  atomic.Uint64

	// streamRowHook, when non-nil, runs after every NDJSON row the /v1/query
	// streaming path emits, with the request context. Test-only: the
	// cancellation tests use it to hold the stream open until a cancel has
	// provably reached the handler, making mid-stream cut-off deterministic.
	streamRowHook func(ctx context.Context)

	// ingestPurgeHook, when non-nil, runs after IngestSessions has swapped
	// the model and purged its cache namespaces, with the resolved model
	// name. Test-only: the concurrent-ingest tests use it to count purges
	// and to order queries around the swap deterministically.
	ingestPurgeHook func(model string)
}

// New builds a Service over the single database db, registered under
// DefaultModel. The db must not be mutated while the service is in use.
func New(db *ppd.DB, cfg Config) *Service {
	reg := registry.New()
	if err := reg.RegisterDB(DefaultModel, db, ""); err != nil {
		// DefaultModel is a valid name and the registry is empty; only a nil
		// db can fail, which is a programming error at the call site.
		panic(err)
	}
	return NewMulti(reg, cfg)
}

// NewMulti builds a Service over a model registry. The registry may keep
// changing while the service runs (manifest preloads, POST /models,
// DELETE /models/{name}); each request opens its model for the duration of
// the evaluation, so deletions never interrupt in-flight queries.
func NewMulti(reg *registry.Registry, cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{reg: reg, cfg: cfg}
	if cfg.CacheSize > 0 {
		s.cache = NewCache(cfg.CacheSize)
	}
	if cfg.PlanCacheSize > 0 {
		s.plans = NewPlanCache(cfg.PlanCacheSize)
	}
	if cfg.MaxInFlight > 0 {
		s.gate = newGate(cfg.MaxInFlight, cfg.MaxQueue, cfg.RetryAfterSeconds)
	}
	return s
}

// Registry returns the served model catalog.
func (s *Service) Registry() *registry.Registry { return s.reg }

// DB returns the DefaultModel database (nil when no model of that name is
// registered, as in manifest-driven multi-model deployments).
func (s *Service) DB() *ppd.DB {
	h, err := s.reg.Open(DefaultModel)
	if err != nil {
		return nil
	}
	defer h.Close()
	return h.DB()
}

// open resolves a request's model name ("" means DefaultModel) to a
// reference-counted handle; the caller must Close it when the evaluation
// finishes.
func (s *Service) open(model string) (*registry.Handle, error) {
	if model == "" {
		model = DefaultModel
	}
	return s.reg.Open(model)
}

// nsCache namespaces solve-cache keys by model name so two models never
// share entries — even two models built from identical specs, whose
// GroupKeys would otherwise collide by construction. It implements
// ppd.SolveCache over the service's shared sharded Cache.
type nsCache struct {
	prefix string
	c      *Cache
}

// nsSep separates the model namespace from the group key; model names are
// restricted to URL-safe tokens, so the NUL byte cannot occur in a name.
const nsSep = "\x00"

func (n nsCache) Get(key string) (float64, bool) { return n.c.Get(n.prefix + key) }
func (n nsCache) Put(key string, p float64)      { n.c.Put(n.prefix+key, p) }

// Cache returns the shared solve cache (nil when disabled).
func (s *Service) Cache() *Cache { return s.cache }

// PlanCache returns the shared compiled-plan cache (nil when disabled).
func (s *Service) PlanCache() *PlanCache { return s.plans }

// DeleteModel evicts a model from the catalog and purges the model's
// namespace from the compiled-plan cache: plan keys do not encode the
// model's labeling (the namespace does), so a model later registered under
// the same name must never inherit the old model's plans. In-flight queries
// that already opened the model finish normally — a *Plan they hold keeps
// working after the purge, plans are immutable. The solve cache needs no
// purge: its ppd.GroupKey embeds the session model content, so a
// re-registered model cannot collide with stale entries.
func (s *Service) DeleteModel(name string) error {
	if err := s.reg.Delete(name); err != nil {
		return err
	}
	if s.plans != nil {
		s.plans.PurgePrefix(name + nsSep)
	}
	return nil
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	st := Stats{
		Evals:   s.evals.Load(),
		TopKs:   s.topks.Load(),
		Batches: s.batches.Load(),
		Solves:  s.solves.Load(),
	}
	if s.cache != nil {
		st.Cache = s.cache.Stats()
	}
	if s.plans != nil {
		st.PlanCache = s.plans.Stats()
	}
	if s.gate != nil {
		st.Sheds = s.gate.sheds.Load()
		st.InFlight = s.gate.inFlight()
		st.Queued = int(s.gate.queued.Load())
	}
	return st
}

// engine builds a request-scoped engine over one opened model, sharing the
// service cache under the model's namespace. Engines are cheap; one per
// request keeps RNG and solver statistics unshared.
func (s *Service) engine(seed int64, h *registry.Handle) *ppd.Engine {
	e := &ppd.Engine{
		DB:      h.DB(),
		Method:  s.cfg.Method,
		Rng:     rand.New(rand.NewSource(seed)),
		Workers: s.cfg.Workers,
	}
	if s.cache != nil {
		e.Cache = nsCache{prefix: h.Name() + nsSep, c: s.cache}
	}
	if s.plans != nil {
		e.Plans = nsPlanCache{prefix: h.Name() + nsSep, c: s.plans}
	}
	return e
}

// BatchResult reports an EvalBatch: one EvalResult per query (in request
// order) plus batch-level dedup accounting.
type BatchResult struct {
	// Results holds one evaluation per query, in request order.
	Results []*ppd.EvalResult
	// Groups counts distinct (model, union) inference groups across the
	// whole batch.
	Groups int
	// Instances counts group references before cross-query dedup
	// (Instances - Groups were saved by sharing within the batch).
	Instances int
	// Solved counts groups actually sent to a solver.
	Solved int
	// CacheHits counts groups answered from the shared cache.
	// Solved + CacheHits == Groups.
	CacheHits int
}

// TopKRequest is one query of a TopKBatch.
type TopKRequest struct {
	// Query is the conjunctive query (or union of CQs).
	Query string
	// K is how many sessions to return.
	K int
	// Bound is the number of upper-bound edges (0 = naive).
	Bound int
}

// TopKResult is one answer of a TopKBatch.
type TopKResult struct {
	// Top lists the k most probable sessions, best first.
	Top []ppd.SessionProb
	// Diag reports the work the top-k evaluation performed.
	Diag *ppd.TopKDiag
}
