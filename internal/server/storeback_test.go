package server

import (
	"context"
	"encoding/json"
	"math"
	"path/filepath"
	"testing"

	"probpref/internal/dataset"
	"probpref/internal/ppd"
	"probpref/internal/registry"
	"probpref/internal/store"
)

// TestStoreBackedBatchBitIdentical runs one mixed-kind DoBatch — bool,
// count, topk, aggregate and countdist, with enough repeated unions that
// the batched SolveSessions lanes and cross-request dedup engage — against
// a RAM-built figure1 service and against a service whose model was
// restored from a .ppds snapshot, and demands bit-identical responses and
// identical dedup accounting. A marker demo query planted in the snapshot
// proves the second service really decoded the file instead of rebuilding.
func TestStoreBackedBatchBitIdentical(t *testing.T) {
	db, _, err := dataset.Build(dataset.BuildConfig{Name: "figure1"})
	if err != nil {
		t.Fatal(err)
	}
	const marker = "snapshot-restored"
	dir := t.TempDir()
	if err := store.WriteFile(filepath.Join(dir, "default.ppds"), db, marker); err != nil {
		t.Fatal(err)
	}
	ram := New(db, Config{})
	reg := registry.New()
	reg.SetSnapshotDir(dir)
	if err := reg.Register(registry.Spec{Name: DefaultModel, Dataset: "figure1", Preload: true}); err != nil {
		t.Fatal(err)
	}
	h, err := reg.Open(DefaultModel)
	if err != nil {
		t.Fatal(err)
	}
	if h.DemoQuery() != marker {
		t.Fatalf("demo %q: model was rebuilt by the generator, not restored from the snapshot", h.DemoQuery())
	}
	h.Close()
	disk := NewMulti(reg, Config{})

	reqs := []*ppd.Request{
		{Kind: ppd.KindBool, Query: q1},
		{Kind: ppd.KindCount, Query: q2},
		{Kind: ppd.KindTopK, Query: q1, K: 3, BoundEdges: 1},
		{Kind: ppd.KindAggregate, Query: q1, AggRel: "V", AggAttr: "age"},
		{Kind: ppd.KindCountDist, Query: q2},
		{Kind: ppd.KindBool, Query: q2}, // shares q2's union with the count request
	}
	ctx := context.Background()
	want, err := ram.DoBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := disk.DoBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if want.Groups != got.Groups || want.Instances != got.Instances ||
		want.Solved != got.Solved || want.CacheHits != got.CacheHits {
		t.Fatalf("dedup accounting differs: ram %d/%d/%d/%d, store %d/%d/%d/%d",
			want.Groups, want.Instances, want.Solved, want.CacheHits,
			got.Groups, got.Instances, got.Solved, got.CacheHits)
	}
	for i := range reqs {
		w, g := canonResponse(t, want.Responses[i]), canonResponse(t, got.Responses[i])
		if w != g {
			t.Errorf("request %d (%v): responses differ\n-- ram --\n%s\n-- store --\n%s", i, reqs[i].Kind, w, g)
		}
	}
}

// canonResponse projects a response to JSON with floats as their exact
// bit patterns, so equality means bit-identical answers.
func canonResponse(t *testing.T, r *ppd.Response) string {
	t.Helper()
	bits := func(f float64) uint64 { return math.Float64bits(f) }
	rows := func(sps []ppd.SessionProb) []map[string]any {
		out := make([]map[string]any, len(sps))
		for i, sp := range sps {
			out[i] = map[string]any{"key": sp.Session.Key, "prob": bits(sp.Prob)}
		}
		return out
	}
	v := map[string]any{
		"kind": r.Kind, "prob": bits(r.Prob), "count": bits(r.Count),
		"per": rows(r.PerSession), "top": rows(r.Top),
		"solves": r.Solves, "cacheHits": r.CacheHits,
	}
	if r.Agg != nil {
		v["agg"] = []uint64{bits(r.Agg.Sum), bits(r.Agg.Count), bits(r.Agg.Avg), uint64(r.Agg.Sessions)}
	}
	if r.Dist != nil {
		pmf := make([]uint64, len(r.Dist.PMF))
		for i, p := range r.Dist.PMF {
			pmf[i] = bits(p)
		}
		v["pmf"] = pmf
	}
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
