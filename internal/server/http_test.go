package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

func queryParam(q string) string { return url.QueryEscape(q) }

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

func get(t *testing.T, srv *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", path, err)
		}
	}
	return resp.StatusCode
}

func post(t *testing.T, srv *httptest.Server, path, body string, out any) int {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestHTTPEval(t *testing.T) {
	svc := figure1Service(t, Config{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	var er EvalResponse
	if code := get(t, srv, "/eval?q="+queryParam(q1)+"&sessions=1", &er); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(er.Results) != 1 || er.Results[0].Prob <= 0 || er.Results[0].Prob > 1 {
		t.Fatalf("bad result: %+v", er)
	}
	if len(er.Results[0].PerSession) == 0 {
		t.Fatal("sessions=1 should include per-session probabilities")
	}

	var batch EvalResponse
	body, _ := json.Marshal(EvalRequest{Queries: []string{q1, q1}})
	if code := post(t, srv, "/eval", string(body), &batch); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(batch.Results) != 2 {
		t.Fatalf("got %d results", len(batch.Results))
	}
	if batch.Batch.Instances <= batch.Batch.Groups {
		t.Fatalf("no dedup visible: %+v", batch.Batch)
	}
	if batch.Results[0].Prob != er.Results[0].Prob {
		t.Fatalf("batch prob %v != single prob %v", batch.Results[0].Prob, er.Results[0].Prob)
	}
}

func TestHTTPTopK(t *testing.T) {
	svc := figure1Service(t, Config{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	var tr TopKResponse
	if code := get(t, srv, "/topk?q="+queryParam(q1)+"&k=2&bound=1", &tr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(tr.Results) != 1 || len(tr.Results[0].Top) != 2 {
		t.Fatalf("bad topk response: %+v", tr)
	}

	var batch TopKResponse
	body, _ := json.Marshal(TopKBatchRequest{Queries: []TopKRequestJSON{
		{Query: q1, K: 1, Bound: 1}, {Query: q2, K: 2, Bound: 0},
	}})
	if code := post(t, srv, "/topk", string(body), &batch); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(batch.Results) != 2 || len(batch.Results[0].Top) != 1 || len(batch.Results[1].Top) != 2 {
		t.Fatalf("bad batch: %+v", batch)
	}
}

func TestHTTPStatsAndHealth(t *testing.T) {
	svc := figure1Service(t, Config{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	get(t, srv, "/eval?q="+queryParam(q1), nil)
	var st StatsResponse
	if code := get(t, srv, "/stats", &st); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if st.Items != 4 || st.Sessions != 3 || st.Service.Evals != 1 {
		t.Fatalf("stats = %+v", st)
	}
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestHTTPErrors(t *testing.T) {
	svc := figure1Service(t, Config{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	if code := get(t, srv, "/eval", nil); code != http.StatusBadRequest {
		t.Fatalf("missing q: status %d", code)
	}
	if code := get(t, srv, "/eval?q=bogus(", nil); code != http.StatusBadRequest {
		t.Fatalf("bad query: status %d", code)
	}
	if code := post(t, srv, "/eval", `{"queries": []}`, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", code)
	}
	if code := get(t, srv, "/topk?q="+queryParam(q1)+"&k=zzz", nil); code != http.StatusBadRequest {
		t.Fatalf("bad k: status %d", code)
	}
	if code := get(t, srv, "/topk?q="+queryParam(q1)+"&k=-1", nil); code != http.StatusBadRequest {
		t.Fatalf("negative k: status %d", code)
	}
	// k omitted in a POST body must default like the GET default, not panic.
	var tr TopKResponse
	if code := post(t, srv, "/topk", `{"queries": [{"query": `+jsonString(q1)+`}]}`, &tr); code != http.StatusOK {
		t.Fatalf("omitted k: status %d", code)
	}
	if len(tr.Results) != 1 || len(tr.Results[0].Top) != 3 {
		t.Fatalf("omitted k should default to 3: %+v", tr)
	}
	// A parseable query that fails grounding (unknown relation) is a
	// server-classified failure (500), consistently on both endpoints; a
	// parse failure stays 400.
	bad := `P(_,_; a; b), X(a,_)`
	if code := get(t, srv, "/eval?q="+queryParam(bad), nil); code != http.StatusInternalServerError {
		t.Fatalf("grounding error on /eval: status %d", code)
	}
	if code := get(t, srv, "/topk?q="+queryParam(bad), nil); code != http.StatusInternalServerError {
		t.Fatalf("grounding error on /topk: status %d", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/eval", nil)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
}
