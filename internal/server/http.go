package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"probpref/internal/ppd"
	"probpref/internal/registry"
)

// SessionProbJSON is the wire form of one per-session probability.
type SessionProbJSON struct {
	// Session is the session key (the values of the session attributes).
	Session []string `json:"session"`
	// Prob is the probability the session satisfies the query.
	Prob float64 `json:"prob"`
}

// PlanJSON is the wire form of the adaptive planner's routing report.
type PlanJSON struct {
	// ExactGroups counts the inference groups routed to exact solvers.
	ExactGroups int `json:"exact_groups"`
	// SampledGroups counts the groups routed to sampling.
	SampledGroups int `json:"sampled_groups"`
	// Samples is the total number of samples drawn across sampled groups.
	Samples int `json:"samples"`
	// MaxHalfWidth is the widest 95% confidence half-width of any sampled
	// group.
	MaxHalfWidth float64 `json:"max_half_width"`
	// ProbHalfWidth is the half-width propagated to the probability.
	ProbHalfWidth float64 `json:"prob_half_width"`
	// CountHalfWidth is the half-width propagated to the expected count.
	CountHalfWidth float64 `json:"count_half_width"`
	// Methods counts the groups routed to each named method.
	Methods map[string]int `json:"methods,omitempty"`
}

// EvalResultJSON is the wire form of one evaluation.
type EvalResultJSON struct {
	// Prob is the marginal probability Pr(Q|D).
	Prob float64 `json:"prob"`
	// Count is the expected number of sessions satisfying the query.
	Count float64 `json:"count"`
	// LiveSessions counts sessions with a non-empty grounded union.
	LiveSessions int `json:"live_sessions"`
	// Solves counts the query's freshly solved groups (batch accounting
	// attributes each group to the first query that referenced it).
	Solves int `json:"solves"`
	// CacheHits counts the query's groups answered from the shared cache.
	CacheHits int `json:"cache_hits"`
	// PerSession lists per-session probabilities (with sessions=1 /
	// per_session).
	PerSession []SessionProbJSON `json:"per_session,omitempty"`
	// Plan reports the adaptive planner's routing and confidence
	// half-widths; present only when the service method is "adaptive".
	Plan *PlanJSON `json:"plan,omitempty"`
}

// BatchJSON is the wire form of EvalBatch's dedup accounting.
type BatchJSON struct {
	// Groups counts distinct (model, union) inference groups of the batch.
	Groups int `json:"groups"`
	// Instances counts group references before cross-query dedup.
	Instances int `json:"instances"`
	// Solved counts groups sent to a solver.
	Solved int `json:"solved"`
	// CacheHits counts groups answered from the shared cache.
	CacheHits int `json:"cache_hits"`
}

// EvalResponse is the wire form of POST /eval and GET /eval.
type EvalResponse struct {
	// Results holds one evaluation per query, in request order.
	Results []EvalResultJSON `json:"results"`
	// Batch reports the batch-level dedup accounting.
	Batch BatchJSON `json:"batch"`
}

// EvalRequest is the body of POST /eval.
type EvalRequest struct {
	// Queries are the conjunctive queries (or unions of CQs) to evaluate
	// as one deduplicated batch.
	Queries []string `json:"queries"`
	// Model names the registry model the batch runs against; "" selects
	// DefaultModel. (GET /eval accepts the same value as the model query
	// parameter.)
	Model string `json:"model,omitempty"`
	// PerSession includes per-session probabilities in every result.
	PerSession bool `json:"per_session,omitempty"`
	// TimeoutMS arms a deadline on the batch: with the adaptive method the
	// planner budgets each group from it (degrading to sampling with error
	// bars); with every other method the evaluation aborts when it expires.
	// 0 means no deadline. (GET /eval accepts the same value as the
	// timeout_ms query parameter.)
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// TopKDiagJSON is the wire form of a top-k diagnostic.
type TopKDiagJSON struct {
	// BoundSolves counts upper-bound relaxation solves.
	BoundSolves int `json:"bound_solves"`
	// ExactSolves counts exact per-session solves the bounds could not prune.
	ExactSolves int `json:"exact_solves"`
	// SessionsEvaluated counts sessions examined before early termination.
	SessionsEvaluated int `json:"sessions_evaluated"`
	// CacheHits counts solves answered from the shared cache.
	CacheHits int `json:"cache_hits"`
}

// TopKResultJSON is the wire form of one top-k answer.
type TopKResultJSON struct {
	// Top lists the k most probable sessions, best first.
	Top []SessionProbJSON `json:"top"`
	// Diag reports the work the top-k evaluation performed.
	Diag TopKDiagJSON `json:"diag"`
}

// TopKResponse is the wire form of /topk.
type TopKResponse struct {
	// Results holds one answer per query, in request order.
	Results []TopKResultJSON `json:"results"`
}

// TopKRequestJSON is one query of a POST /topk batch.
type TopKRequestJSON struct {
	// Query is the conjunctive query (or union of CQs).
	Query string `json:"query"`
	// K is how many sessions to return (default 3).
	K int `json:"k"`
	// Bound is the number of upper-bound edges (0 = naive).
	Bound int `json:"bound"`
}

// TopKBatchRequest is the body of POST /topk.
type TopKBatchRequest struct {
	// Queries are the top-k requests of the batch.
	Queries []TopKRequestJSON `json:"queries"`
	// Model names the registry model the batch runs against; "" selects
	// DefaultModel. (GET /topk accepts the same value as the model query
	// parameter.)
	Model string `json:"model,omitempty"`
}

// StatsResponse is the wire form of GET /stats. Items and Sessions sum
// over the currently loaded models of the catalog (lazy models not yet
// opened contribute nothing).
type StatsResponse struct {
	// Items sums item-domain sizes over the loaded models.
	Items int `json:"items"`
	// Sessions sums session counts over the loaded models.
	Sessions int `json:"sessions"`
	// Models is the catalog listing, sorted by name.
	Models []registry.Info `json:"models"`
	// Service snapshots the request and cache counters.
	Service Stats `json:"service"`
	// SnapshotErrors counts the registry's failed snapshot writes since
	// startup; a non-zero value means restart recovery depends entirely on
	// the write-ahead log (or, without one, that ingest durability is
	// degraded).
	SnapshotErrors uint64 `json:"snapshot_errors"`
}

// ModelsResponse is the wire form of GET /models: the catalog listing,
// sorted by name.
type ModelsResponse struct {
	// Models is the catalog listing, sorted by name.
	Models []registry.Info `json:"models"`
}

// ModelResponse is the wire form of POST /models and GET /models/{name}:
// one catalog row.
type ModelResponse struct {
	// Model is the requested catalog row.
	Model registry.Info `json:"model"`
}

// DeleteModelResponse is the wire form of DELETE /models/{name}.
type DeleteModelResponse struct {
	// Deleted is the evicted model's name.
	Deleted string `json:"deleted"`
}

type httpError struct {
	status int
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }

// HTTPError wraps err so ServeJSON reports it with the given HTTP status
// instead of the default classification. The cluster coordinator uses it to
// surface upstream shard failures as gateway errors.
func HTTPError(status int, err error) error { return &httpError{status, err} }

// ErrorStatus reports the HTTP status a HTTPError-wrapped error carries
// (ok=false for any other error). The cluster coordinator uses it to tell a
// shard's deterministic rejection, which must propagate, from a transient
// failure, which triggers the replica.
func ErrorStatus(err error) (status int, ok bool) {
	var he *httpError
	if errors.As(err, &he) {
		return he.status, true
	}
	return 0, false
}

// Handler returns the HTTP/JSON front end of the service:
//
//	POST   /v1/query               unified query endpoint: one typed request
//	                               (kind: bool | count | topk | aggregate |
//	                               countdist) or a {"requests": [...]} batch,
//	                               with NDJSON streaming of topk rows via
//	                               "stream"
//	POST   /v1/sessions            append sessions to a model's p-relation
//	                               ({"model","pref","sessions":[...]}); purges
//	                               the model's cache namespaces and, with a
//	                               snapshot directory, persists the growth
//	GET    /eval?q=Q[&sessions=1][&model=M]   evaluate one query (legacy)
//	POST   /eval                   {"queries": [...], "model": M} batch with dedup (legacy)
//	GET    /topk?q=Q&k=K&bound=B[&model=M]    one Most-Probable-Session query (legacy)
//	POST   /topk                   {"queries": [{"query","k","bound"}, ...], "model": M} (legacy)
//	GET    /models                 list the model catalog
//	POST   /models                 register a dataset-backed model (registry.Spec body)
//	GET    /models/{name}          one catalog row
//	DELETE /models/{name}          evict a model (in-flight queries finish first)
//	GET    /stats                  service, catalog and cache statistics
//	GET    /healthz                liveness probe
//
// The legacy /eval and /topk endpoints are thin adapters that build
// ppd.Requests and serve through the same Do path as /v1/query. See
// docs/API.md for the request/response schemas with curl examples.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	// The work-bearing endpoints run behind the admission gate (see
	// admission.go); probe and management routes below stay ungated.
	mux.HandleFunc("POST /v1/query", s.gated(s.handleV1Query))
	mux.HandleFunc("POST /v1/sessions", s.gated(func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, func() (any, error) { return s.handleIngest(r) })
	}))
	mux.HandleFunc("/eval", s.gated(func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, func() (any, error) { return s.handleEval(r) })
	}))
	mux.HandleFunc("/topk", s.gated(func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, func() (any, error) { return s.handleTopK(r) })
	}))
	mux.HandleFunc("GET /models", func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, func() (any, error) {
			return &ModelsResponse{Models: s.reg.List()}, nil
		})
	})
	mux.HandleFunc("POST /models", func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, func() (any, error) { return s.handleRegisterModel(r) })
	})
	mux.HandleFunc("GET /models/{name}", func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, func() (any, error) {
			info, err := s.reg.Lookup(r.PathValue("name"))
			if err != nil {
				return nil, err
			}
			return &ModelResponse{Model: info}, nil
		})
	})
	mux.HandleFunc("DELETE /models/{name}", func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, func() (any, error) {
			name := r.PathValue("name")
			if err := s.DeleteModel(name); err != nil {
				return nil, err
			}
			return &DeleteModelResponse{Deleted: name}, nil
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, func() (any, error) {
			models := s.reg.List()
			items, sessions := 0, 0
			for _, m := range models {
				items += m.Items
				sessions += m.Sessions
			}
			return &StatsResponse{
				Items: items, Sessions: sessions, Models: models,
				Service: s.Stats(), SnapshotErrors: s.reg.SnapshotErrors(),
			}, nil
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handleRegisterModel serves POST /models: the body is one registry.Spec;
// with preload set the model is built before the response is written, so a
// 200 means the model is ready to serve.
func (s *Service) handleRegisterModel(r *http.Request) (*ModelResponse, error) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec registry.Spec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("decoding body: %w", err)
	}
	if err := s.reg.Register(spec); err != nil {
		return nil, err
	}
	info, err := s.reg.Lookup(spec.Name)
	if err != nil {
		return nil, err
	}
	return &ModelResponse{Model: info}, nil
}

// handleIngest serves POST /v1/sessions: the body is one IngestRequest; a
// 200 means the sessions are durably part of the model (and of its snapshot
// when a snapshot directory is configured).
func (s *Service) handleIngest(r *http.Request) (*IngestResponse, error) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req IngestRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decoding body: %w", err)
	}
	return s.IngestSessions(&req)
}

// ServeJSON runs fn and writes its result as indented JSON, mapping errors
// to statuses: parse/validation failures are the client's fault (400),
// failures while evaluating an accepted request are ours (500), catalog
// misses and collisions get their idiomatic REST statuses, and HTTPError
// overrides win. Every JSON endpoint of the service — and of the cluster
// coordinator, which must stay byte-identical to it — responds through this
// one function.
func ServeJSON(w http.ResponseWriter, fn func() (any, error)) {
	serveJSON(w, fn)
}

func serveJSON(w http.ResponseWriter, fn func() (any, error)) {
	v, err := fn()
	if err != nil {
		// Parse/validation failures are the client's fault (400); failures
		// while evaluating an accepted request are ours (500); catalog
		// misses and collisions get their idiomatic REST statuses.
		status := http.StatusBadRequest
		var he *httpError
		var ee *evalError
		switch {
		case errors.As(err, &he):
			status = he.status
		case errors.Is(err, registry.ErrNotFound):
			status = http.StatusNotFound
		case errors.Is(err, registry.ErrExists):
			status = http.StatusConflict
		case errors.As(err, &ee):
			status = http.StatusInternalServerError
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Service) handleEval(r *http.Request) (*EvalResponse, error) {
	var req EvalRequest
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query().Get("q")
		if q == "" {
			return nil, fmt.Errorf("missing q parameter")
		}
		req.Queries = []string{q}
		req.Model = r.URL.Query().Get("model")
		req.PerSession = r.URL.Query().Get("sessions") != ""
		if v := r.URL.Query().Get("timeout_ms"); v != "" {
			ms, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("bad timeout_ms: %w", err)
			}
			req.TimeoutMS = ms
		}
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return nil, fmt.Errorf("decoding body: %w", err)
		}
		if len(req.Queries) == 0 {
			return nil, fmt.Errorf("empty queries")
		}
	default:
		return nil, &httpError{http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method)}
	}
	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("timeout_ms must be non-negative")
	}
	// The request context cancels the batch when the client disconnects;
	// timeout_ms additionally arms a deadline the adaptive planner budgets
	// against.
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	// Legacy adapter: the endpoint re-expresses its queries as unified
	// requests and serves through the same DoBatch path as /v1/query.
	reqs := make([]*ppd.Request, len(req.Queries))
	for i, q := range req.Queries {
		reqs[i] = &ppd.Request{Kind: ppd.KindBool, Query: q, Model: req.Model}
	}
	br, err := s.DoBatch(ctx, reqs)
	if err != nil {
		return nil, err
	}
	resp := &EvalResponse{Batch: BatchJSON{
		Groups:    br.Groups,
		Instances: br.Instances,
		Solved:    br.Solved,
		CacheHits: br.CacheHits,
	}}
	for _, res := range br.Responses {
		resp.Results = append(resp.Results, evalResultJSON(res.EvalResult(), req.PerSession))
	}
	return resp, nil
}

func evalResultJSON(res *ppd.EvalResult, perSession bool) EvalResultJSON {
	out := EvalResultJSON{
		Prob:         res.Prob,
		Count:        res.Count,
		LiveSessions: len(res.PerSession),
		Solves:       res.Solves,
		CacheHits:    res.CacheHits,
	}
	if res.Plan != nil {
		out.Plan = &PlanJSON{
			ExactGroups:    res.Plan.ExactGroups,
			SampledGroups:  res.Plan.SampledGroups,
			Samples:        res.Plan.Samples,
			MaxHalfWidth:   res.Plan.MaxHalfWidth,
			ProbHalfWidth:  res.Plan.ProbHalfWidth,
			CountHalfWidth: res.Plan.CountHalfWidth,
			Methods:        res.Plan.Methods,
		}
	}
	if perSession {
		for _, sp := range res.PerSession {
			out.PerSession = append(out.PerSession, SessionProbJSON{Session: sp.Session.Key, Prob: sp.Prob})
		}
	}
	return out
}

func (s *Service) handleTopK(r *http.Request) (*TopKResponse, error) {
	var reqs []TopKRequest
	var model string
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query().Get("q")
		if q == "" {
			return nil, fmt.Errorf("missing q parameter")
		}
		model = r.URL.Query().Get("model")
		req := TopKRequest{Query: q, K: 3, Bound: 1}
		var err error
		if v := r.URL.Query().Get("k"); v != "" {
			if req.K, err = strconv.Atoi(v); err != nil {
				return nil, fmt.Errorf("bad k: %w", err)
			}
		}
		if v := r.URL.Query().Get("bound"); v != "" {
			if req.Bound, err = strconv.Atoi(v); err != nil {
				return nil, fmt.Errorf("bad bound: %w", err)
			}
		}
		reqs = []TopKRequest{req}
	case http.MethodPost:
		var body TopKBatchRequest
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			return nil, fmt.Errorf("decoding body: %w", err)
		}
		if len(body.Queries) == 0 {
			return nil, fmt.Errorf("empty queries")
		}
		model = body.Model
		for _, q := range body.Queries {
			reqs = append(reqs, TopKRequest{Query: q.Query, K: q.K, Bound: q.Bound})
		}
	default:
		return nil, &httpError{http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method)}
	}
	for i := range reqs {
		if reqs[i].K == 0 {
			reqs[i].K = 3 // GET and POST share the same default
		}
		if reqs[i].K < 0 || reqs[i].Bound < 0 {
			return nil, fmt.Errorf("query %d: k and bound must be non-negative", i+1)
		}
	}
	// Legacy adapter: the endpoint re-expresses its queries as unified
	// requests and serves through the same DoBatch path as /v1/query.
	dreqs := make([]*ppd.Request, len(reqs))
	for i, tr := range reqs {
		dreqs[i] = &ppd.Request{Kind: ppd.KindTopK, Query: tr.Query, Model: model, K: tr.K, BoundEdges: tr.Bound}
	}
	br, err := s.DoBatch(r.Context(), dreqs)
	if err != nil {
		return nil, err
	}
	resp := &TopKResponse{}
	for _, res := range br.Responses {
		rj := TopKResultJSON{Diag: TopKDiagJSON{
			BoundSolves:       res.Diag.BoundSolves,
			ExactSolves:       res.Diag.ExactSolves,
			SessionsEvaluated: res.Diag.SessionsEvaluated,
			CacheHits:         res.Diag.CacheHits,
		}}
		for _, sp := range res.Top {
			rj.Top = append(rj.Top, SessionProbJSON{Session: sp.Session.Key, Prob: sp.Prob})
		}
		resp.Results = append(resp.Results, rj)
	}
	return resp, nil
}
