package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"probpref/internal/ppd"
)

// SessionProbJSON is the wire form of one per-session probability.
type SessionProbJSON struct {
	Session []string `json:"session"`
	Prob    float64  `json:"prob"`
}

// PlanJSON is the wire form of the adaptive planner's routing report.
type PlanJSON struct {
	ExactGroups    int            `json:"exact_groups"`
	SampledGroups  int            `json:"sampled_groups"`
	Samples        int            `json:"samples"`
	MaxHalfWidth   float64        `json:"max_half_width"`
	ProbHalfWidth  float64        `json:"prob_half_width"`
	CountHalfWidth float64        `json:"count_half_width"`
	Methods        map[string]int `json:"methods,omitempty"`
}

// EvalResultJSON is the wire form of one evaluation.
type EvalResultJSON struct {
	Prob         float64           `json:"prob"`
	Count        float64           `json:"count"`
	LiveSessions int               `json:"live_sessions"`
	Solves       int               `json:"solves"`
	CacheHits    int               `json:"cache_hits"`
	PerSession   []SessionProbJSON `json:"per_session,omitempty"`
	// Plan reports the adaptive planner's routing and confidence
	// half-widths; present only when the service method is "adaptive".
	Plan *PlanJSON `json:"plan,omitempty"`
}

// BatchJSON is the wire form of EvalBatch's dedup accounting.
type BatchJSON struct {
	Groups    int `json:"groups"`
	Instances int `json:"instances"`
	Solved    int `json:"solved"`
	CacheHits int `json:"cache_hits"`
}

// EvalResponse is the wire form of POST /eval and GET /eval.
type EvalResponse struct {
	Results []EvalResultJSON `json:"results"`
	Batch   BatchJSON        `json:"batch"`
}

// EvalRequest is the body of POST /eval.
type EvalRequest struct {
	Queries []string `json:"queries"`
	// PerSession includes per-session probabilities in every result.
	PerSession bool `json:"per_session,omitempty"`
	// TimeoutMS arms a deadline on the batch: with the adaptive method the
	// planner budgets each group from it (degrading to sampling with error
	// bars); with every other method the evaluation aborts when it expires.
	// 0 means no deadline. (GET /eval accepts the same value as the
	// timeout_ms query parameter.)
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// TopKDiagJSON is the wire form of a top-k diagnostic.
type TopKDiagJSON struct {
	BoundSolves       int `json:"bound_solves"`
	ExactSolves       int `json:"exact_solves"`
	SessionsEvaluated int `json:"sessions_evaluated"`
	CacheHits         int `json:"cache_hits"`
}

// TopKResultJSON is the wire form of one top-k answer.
type TopKResultJSON struct {
	Top  []SessionProbJSON `json:"top"`
	Diag TopKDiagJSON      `json:"diag"`
}

// TopKResponse is the wire form of /topk.
type TopKResponse struct {
	Results []TopKResultJSON `json:"results"`
}

// TopKRequestJSON is one query of a POST /topk batch.
type TopKRequestJSON struct {
	Query string `json:"query"`
	K     int    `json:"k"`
	Bound int    `json:"bound"`
}

// TopKBatchRequest is the body of POST /topk.
type TopKBatchRequest struct {
	Queries []TopKRequestJSON `json:"queries"`
}

// StatsResponse is the wire form of GET /stats.
type StatsResponse struct {
	Items    int   `json:"items"`
	Sessions int   `json:"sessions"`
	Service  Stats `json:"service"`
}

type httpError struct {
	status int
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }

// Handler returns the HTTP/JSON front end of the service:
//
//	GET  /eval?q=Q[&sessions=1]   evaluate one query
//	POST /eval                    {"queries": [...]} batch with dedup
//	GET  /topk?q=Q&k=K&bound=B    one Most-Probable-Session query
//	POST /topk                    {"queries": [{"query","k","bound"}, ...]}
//	GET  /stats                   service and cache statistics
//	GET  /healthz                 liveness probe
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/eval", func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, func() (any, error) { return s.handleEval(r) })
	})
	mux.HandleFunc("/topk", func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, func() (any, error) { return s.handleTopK(r) })
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, func() (any, error) {
			n := 0
			for _, p := range s.db.Prefs {
				n += len(p.Sessions)
			}
			return &StatsResponse{Items: s.db.M(), Sessions: n, Service: s.Stats()}, nil
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func serveJSON(w http.ResponseWriter, fn func() (any, error)) {
	v, err := fn()
	if err != nil {
		// Parse/validation failures are the client's fault (400); failures
		// while evaluating an accepted request are ours (500).
		status := http.StatusBadRequest
		var he *httpError
		var ee *evalError
		switch {
		case errors.As(err, &he):
			status = he.status
		case errors.As(err, &ee):
			status = http.StatusInternalServerError
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Service) handleEval(r *http.Request) (*EvalResponse, error) {
	var req EvalRequest
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query().Get("q")
		if q == "" {
			return nil, fmt.Errorf("missing q parameter")
		}
		req.Queries = []string{q}
		req.PerSession = r.URL.Query().Get("sessions") != ""
		if v := r.URL.Query().Get("timeout_ms"); v != "" {
			ms, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("bad timeout_ms: %w", err)
			}
			req.TimeoutMS = ms
		}
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return nil, fmt.Errorf("decoding body: %w", err)
		}
		if len(req.Queries) == 0 {
			return nil, fmt.Errorf("empty queries")
		}
	default:
		return nil, &httpError{http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method)}
	}
	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("timeout_ms must be non-negative")
	}
	// The request context cancels the batch when the client disconnects;
	// timeout_ms additionally arms a deadline the adaptive planner budgets
	// against.
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	br, err := s.EvalBatchCtx(ctx, req.Queries)
	if err != nil {
		return nil, err
	}
	resp := &EvalResponse{Batch: BatchJSON{
		Groups:    br.Groups,
		Instances: br.Instances,
		Solved:    br.Solved,
		CacheHits: br.CacheHits,
	}}
	for _, res := range br.Results {
		resp.Results = append(resp.Results, evalResultJSON(res, req.PerSession))
	}
	return resp, nil
}

func evalResultJSON(res *ppd.EvalResult, perSession bool) EvalResultJSON {
	out := EvalResultJSON{
		Prob:         res.Prob,
		Count:        res.Count,
		LiveSessions: len(res.PerSession),
		Solves:       res.Solves,
		CacheHits:    res.CacheHits,
	}
	if res.Plan != nil {
		out.Plan = &PlanJSON{
			ExactGroups:    res.Plan.ExactGroups,
			SampledGroups:  res.Plan.SampledGroups,
			Samples:        res.Plan.Samples,
			MaxHalfWidth:   res.Plan.MaxHalfWidth,
			ProbHalfWidth:  res.Plan.ProbHalfWidth,
			CountHalfWidth: res.Plan.CountHalfWidth,
			Methods:        res.Plan.Methods,
		}
	}
	if perSession {
		for _, sp := range res.PerSession {
			out.PerSession = append(out.PerSession, SessionProbJSON{Session: sp.Session.Key, Prob: sp.Prob})
		}
	}
	return out
}

func (s *Service) handleTopK(r *http.Request) (*TopKResponse, error) {
	var reqs []TopKRequest
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query().Get("q")
		if q == "" {
			return nil, fmt.Errorf("missing q parameter")
		}
		req := TopKRequest{Query: q, K: 3, Bound: 1}
		var err error
		if v := r.URL.Query().Get("k"); v != "" {
			if req.K, err = strconv.Atoi(v); err != nil {
				return nil, fmt.Errorf("bad k: %w", err)
			}
		}
		if v := r.URL.Query().Get("bound"); v != "" {
			if req.Bound, err = strconv.Atoi(v); err != nil {
				return nil, fmt.Errorf("bad bound: %w", err)
			}
		}
		reqs = []TopKRequest{req}
	case http.MethodPost:
		var body TopKBatchRequest
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			return nil, fmt.Errorf("decoding body: %w", err)
		}
		if len(body.Queries) == 0 {
			return nil, fmt.Errorf("empty queries")
		}
		for _, q := range body.Queries {
			reqs = append(reqs, TopKRequest{Query: q.Query, K: q.K, Bound: q.Bound})
		}
	default:
		return nil, &httpError{http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method)}
	}
	for i := range reqs {
		if reqs[i].K == 0 {
			reqs[i].K = 3 // GET and POST share the same default
		}
		if reqs[i].K < 0 || reqs[i].Bound < 0 {
			return nil, fmt.Errorf("query %d: k and bound must be non-negative", i+1)
		}
	}
	results, err := s.TopKBatchCtx(r.Context(), reqs)
	if err != nil {
		return nil, err
	}
	resp := &TopKResponse{}
	for _, res := range results {
		rj := TopKResultJSON{Diag: TopKDiagJSON{
			BoundSolves:       res.Diag.BoundSolves,
			ExactSolves:       res.Diag.ExactSolves,
			SessionsEvaluated: res.Diag.SessionsEvaluated,
			CacheHits:         res.Diag.CacheHits,
		}}
		for _, sp := range res.Top {
			rj.Top = append(rj.Top, SessionProbJSON{Session: sp.Session.Key, Prob: sp.Prob})
		}
		resp.Results = append(resp.Results, rj)
	}
	return resp, nil
}
