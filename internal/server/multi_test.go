package server

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"probpref/internal/registry"
)

// multiService builds a service over a registry holding two models built
// from the *identical* figure1 spec — the worst case for cache-tenant
// confusion, since every inference group of model "a" has a byte-identical
// GroupKey in model "b".
func multiService(t *testing.T, cfg Config) *Service {
	t.Helper()
	reg := registry.New()
	for _, name := range []string{"a", "b"} {
		if err := reg.Register(registry.Spec{Name: name, Dataset: "figure1"}); err != nil {
			t.Fatal(err)
		}
	}
	return NewMulti(reg, cfg)
}

// TestCacheNamespaceIsolation proves per-model cache isolation: the same
// query on two identical models must not share solve-cache entries, while
// re-asking on the same model must hit.
func TestCacheNamespaceIsolation(t *testing.T) {
	svc := multiService(t, Config{})
	ctx := context.Background()

	brA, err := svc.EvalBatchModelCtx(ctx, "a", []string{q1})
	if err != nil {
		t.Fatal(err)
	}
	if brA.CacheHits != 0 || brA.Solved == 0 {
		t.Fatalf("cold model a: hits=%d solved=%d, want fresh solves", brA.CacheHits, brA.Solved)
	}

	brB, err := svc.EvalBatchModelCtx(ctx, "b", []string{q1})
	if err != nil {
		t.Fatal(err)
	}
	if brB.CacheHits != 0 {
		t.Fatalf("model b observed %d cross-tenant cache hits", brB.CacheHits)
	}
	if brB.Solved != brA.Solved {
		t.Fatalf("model b solved %d groups, want %d (same dataset, own namespace)", brB.Solved, brA.Solved)
	}

	brA2, err := svc.EvalBatchModelCtx(ctx, "a", []string{q1})
	if err != nil {
		t.Fatal(err)
	}
	if brA2.Solved != 0 || brA2.CacheHits != brA.Solved {
		t.Fatalf("warm model a: hits=%d solved=%d, want all %d groups from cache",
			brA2.CacheHits, brA2.Solved, brA.Solved)
	}

	// Both tenants answered from their own entries, so the answers agree.
	if pa, pb := brA.Results[0].Prob, brB.Results[0].Prob; math.Abs(pa-pb) > 1e-12 {
		t.Fatalf("identical models disagree: %v vs %v", pa, pb)
	}
}

// TestSingleQueryPathNamespacing covers the non-batch path (EvalModelCtx),
// whose engine consults the cache directly through the namespaced adapter.
func TestSingleQueryPathNamespacing(t *testing.T) {
	svc := multiService(t, Config{})
	ctx := context.Background()
	if _, err := svc.EvalModelCtx(ctx, "a", q1); err != nil {
		t.Fatal(err)
	}
	resB, err := svc.EvalModelCtx(ctx, "b", q1)
	if err != nil {
		t.Fatal(err)
	}
	if resB.CacheHits != 0 {
		t.Fatalf("model b saw %d cross-tenant cache hits on the single-query path", resB.CacheHits)
	}
	resB2, err := svc.EvalModelCtx(ctx, "b", q1)
	if err != nil {
		t.Fatal(err)
	}
	if resB2.CacheHits == 0 {
		t.Fatal("repeat on model b should hit its own namespace")
	}
}

func TestUnknownModel(t *testing.T) {
	svc := multiService(t, Config{})
	ctx := context.Background()
	if _, err := svc.EvalModelCtx(ctx, "ghost", q1); !errors.Is(err, registry.ErrNotFound) {
		t.Fatalf("EvalModelCtx(ghost): %v, want ErrNotFound", err)
	}
	if _, err := svc.EvalBatchModelCtx(ctx, "ghost", []string{q1}); !errors.Is(err, registry.ErrNotFound) {
		t.Fatalf("EvalBatchModelCtx(ghost): %v, want ErrNotFound", err)
	}
	if _, _, err := svc.TopKModelCtx(ctx, "ghost", q1, 2, 1); !errors.Is(err, registry.ErrNotFound) {
		t.Fatalf("TopKModelCtx(ghost): %v, want ErrNotFound", err)
	}
	if _, err := svc.TopKBatchModelCtx(ctx, "ghost", []TopKRequest{{Query: q1, K: 2}}); !errors.Is(err, registry.ErrNotFound) {
		t.Fatalf("TopKBatchModelCtx(ghost): %v, want ErrNotFound", err)
	}
}

func TestDefaultModelCompat(t *testing.T) {
	svc := figure1Service(t, Config{})
	if svc.DB() == nil {
		t.Fatal("single-db service lost its DB accessor")
	}
	res1, err := svc.Eval(q1)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := svc.EvalModelCtx(context.Background(), DefaultModel, q1)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Prob != res2.Prob {
		t.Fatalf("unqualified and default-qualified answers differ: %v vs %v", res1.Prob, res2.Prob)
	}
	if res2.CacheHits == 0 {
		t.Fatal("default-qualified repeat should share the unqualified request's cache namespace")
	}
}

// TestConcurrentRegisterEvictDuringQueries races query traffic against
// catalog churn: workers evaluate on a model that other workers keep
// deleting and re-registering. Queries must either answer correctly or
// fail with ErrNotFound — never crash, race, or cross tenants.
func TestConcurrentRegisterEvictDuringQueries(t *testing.T) {
	svc := multiService(t, Config{Workers: 2})
	reg := svc.Registry()
	// Model "b" is never churned; it provides the ground-truth probability.
	ref, err := svc.EvalModelCtx(context.Background(), "b", q1)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Prob
	const (
		queryWorkers = 4
		churnRounds  = 25
	)
	ctx := context.Background()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < queryWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := svc.EvalModelCtx(ctx, "a", q1)
				if err != nil {
					if !errors.Is(err, registry.ErrNotFound) {
						t.Errorf("eval during churn: %v", err)
						return
					}
					continue
				}
				if math.Abs(res.Prob-want) > 1e-12 {
					t.Errorf("eval during churn: prob %v, want %v", res.Prob, want)
					return
				}
			}
		}()
	}
	for i := 0; i < churnRounds; i++ {
		if err := reg.Delete("a"); err != nil && !errors.Is(err, registry.ErrNotFound) {
			t.Errorf("delete: %v", err)
		}
		if err := reg.Register(registry.Spec{Name: "a", Dataset: "figure1"}); err != nil && !errors.Is(err, registry.ErrExists) {
			t.Errorf("register: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}
