package server

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzConsensusRequest drives the wire-to-typed path of POST /v1/query
// with arbitrary JSON bodies — hostile consensus targets, k values, seeds
// and unknown fields. The invariant is crash-freedom: decoding, ToRequest
// and Compile may reject the body but must never panic, and an accepted
// request must produce a usable cache key. Seed inputs beyond the f.Add
// calls live under testdata/fuzz/FuzzConsensusRequest.
func FuzzConsensusRequest(f *testing.F) {
	seeds := []string{
		`{"kind":"consensus","query":"P(_, _; a; b), C(a, _, F, _, _, _)","target":"map"}`,
		`{"kind":"consensus","query":"P(_, _; a; b), C(a, _, F, _, _, _)","target":"median","seed":5}`,
		`{"kind":"consensus","query":"P(_, _; a; b), C(a, _, F, _, _, _)","target":"topk","k":2}`,
		`{"kind":"consensus","query":"P(_;a;b)","target":"top-k","k":-1}`,
		`{"kind":"consensus","query":"P(_;a;b)","target":"kemeny"}`,
		`{"kind":"consensus","query":"P(_;a;b)"}`,
		`{"kind":"consensus","target":"median"}`,
		`{"kind":"bool","query":"P(_;a;b)","target":"median"}`,
		`{"kind":"consensus","query":"P(_;a;b)","target":"median","k":9223372036854775807}`,
		`{"kind":"consensus","query":"P(_;a;b)","target":"topk","k":1073741824,"bound":-3,"timeout_ms":-1}`,
		`{"kind":"consensus","query":"P(","target":"map"}`,
		`{"kind":"consensus","query":"P(_;a;b)","target":"\u0000"}`,
		`{"target":"map"}`,
		`{}`,
		`{"kind":"consensus","query":"P(_;a;b)","target":"median","stream":true}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		var vb V1Body
		if err := dec.Decode(&vb); err != nil {
			return
		}
		req, err := vb.V1Request.ToRequest()
		if err != nil {
			return
		}
		cr, err := req.Compile()
		if err != nil {
			return
		}
		if cr.Key() == "" {
			t.Fatalf("compiled request from %s has an empty key", body)
		}
	})
}
