package server

import (
	"context"
	"fmt"
	"math"
	"testing"

	"probpref/internal/ppd"
	"probpref/internal/registry"
)

// TestPlanCacheLRUAndPurge unit-tests the sharded plan cache: hits, LRU
// eviction, and prefix purges.
func TestPlanCacheLRUAndPurge(t *testing.T) {
	c := NewPlanCache(8)
	for i := 0; i < 8; i++ {
		c.Put(fmt.Sprintf("a%sk%d", nsSep, i), nil)
		c.Put(fmt.Sprintf("b%sk%d", nsSep, i), nil)
	}
	if c.Len() != 8 {
		t.Fatalf("len %d after overfill, want capacity 8", c.Len())
	}
	st := c.Stats()
	if st.Evictions == 0 || st.Capacity != 8 {
		t.Fatalf("stats after overfill: %+v", st)
	}
	if _, ok := c.Get("a" + nsSep + "k0"); ok {
		// k0 may or may not survive depending on shard layout; just make
		// sure Get keeps counting.
	}
	before := c.Len()
	purged := c.PurgePrefix("a" + nsSep)
	if purged+c.Len() != before {
		t.Fatalf("purge dropped %d but len went %d -> %d", purged, before, c.Len())
	}
	if got := c.PurgePrefix("a" + nsSep); got != 0 {
		t.Fatalf("second purge dropped %d entries, want 0", got)
	}
	for i := 0; i < 8; i++ {
		if _, ok := c.Get(fmt.Sprintf("a%sk%d", nsSep, i)); ok {
			t.Fatalf("purged key a/k%d still present", i)
		}
	}
}

// TestDoBatchSeededCarveOutKeepsGroupedPath is the satellite regression for
// the all-or-nothing grouping bug: one request carrying its own seed must
// not kick the groupable majority off the grouped/dedup path. The unseeded
// bool/count requests still report grouped accounting and every answer is
// bit-identical to asking alone.
func TestDoBatchSeededCarveOutKeepsGroupedPath(t *testing.T) {
	ctx := context.Background()
	svc := figure1Service(t, Config{})
	reqs := []*ppd.Request{
		{Kind: ppd.KindBool, Query: q1},
		{Kind: ppd.KindBool, Query: q2},
		{Kind: ppd.KindBool, Query: q1, Seed: 42}, // carve-out
		{Kind: ppd.KindCount, Query: q2},
	}
	br, err := svc.DoBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if br.Groups == 0 || br.Instances == 0 {
		t.Fatalf("grouped accounting lost to the seeded carve-out: %+v", br)
	}
	// The carve-out itself must do no grouped accounting but still answer:
	// exact methods ignore the seed, so its probability matches the grouped
	// answer bit for bit (the fan-out engine may even serve it from the
	// solve cache the cluster just filled).
	if a, b := br.Responses[0].Prob, br.Responses[2].Prob; math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("seeded carve-out answer %v != grouped answer %v", b, a)
	}
	// Cluster counters live on the cluster requests, not the carve-out.
	clusterWork := 0
	for _, ri := range []int{0, 1, 3} {
		clusterWork += br.Responses[ri].Solves + br.Responses[ri].CacheHits
	}
	if clusterWork != br.Groups {
		t.Fatalf("cluster requests account %d groups, batch reports %d", clusterWork, br.Groups)
	}
	// Every answer matches a standalone evaluation bitwise (exact method).
	for ri, req := range reqs {
		fresh := figure1Service(t, Config{})
		want, err := fresh.Do(ctx, &ppd.Request{Kind: req.Kind, Query: req.Query})
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(br.Responses[ri].Prob) != math.Float64bits(want.Prob) {
			t.Fatalf("request %d: batch %v != standalone %v", ri, br.Responses[ri].Prob, want.Prob)
		}
	}
}

// TestDoBatchMultiModelClusters: requests spanning two models form one
// grouped cluster per model instead of all falling back to fan-out.
func TestDoBatchMultiModelClusters(t *testing.T) {
	ctx := context.Background()
	svc := multiService(t, Config{})
	br, err := svc.DoBatch(ctx, []*ppd.Request{
		{Kind: ppd.KindBool, Query: q1, Model: "a"},
		{Kind: ppd.KindBool, Query: q2, Model: "a"},
		{Kind: ppd.KindBool, Query: q1, Model: "b"},
		{Kind: ppd.KindCount, Query: q1, Model: "b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if br.Groups == 0 {
		t.Fatal("multi-model batch lost grouped accounting entirely")
	}
	// Identical models answer identically, each from its own cluster.
	if a, b := br.Responses[0].Prob, br.Responses[2].Prob; math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("identical models disagree: %v vs %v", a, b)
	}
	for ri, resp := range br.Responses {
		if resp == nil || resp.Prob <= 0 || resp.Prob > 1 {
			t.Fatalf("request %d: bad response %+v", ri, resp)
		}
	}
}

// TestPlanCacheServesRepeatBatches: the first batch compiles and caches
// plans; a repeat batch (solve cache disabled, so the groups really solve
// again) reuses them without compiling anything new.
func TestPlanCacheServesRepeatBatches(t *testing.T) {
	ctx := context.Background()
	svc := figure1Service(t, Config{CacheSize: -1})
	reqs := []*ppd.Request{
		{Kind: ppd.KindBool, Query: q1},
		{Kind: ppd.KindBool, Query: q2},
	}
	first, err := svc.DoBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	st := svc.Stats().PlanCache
	if st.Entries == 0 {
		t.Fatalf("no plans cached after first batch: %+v", st)
	}
	entries := st.Entries
	second, err := svc.DoBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	st = svc.Stats().PlanCache
	if st.Entries != entries {
		t.Fatalf("repeat batch changed plan entries %d -> %d, want reuse", entries, st.Entries)
	}
	if st.Hits == 0 {
		t.Fatalf("repeat batch never hit the plan cache: %+v", st)
	}
	for ri := range reqs {
		if math.Float64bits(first.Responses[ri].Prob) != math.Float64bits(second.Responses[ri].Prob) {
			t.Fatalf("request %d: cached-plan answer differs: %v vs %v",
				ri, first.Responses[ri].Prob, second.Responses[ri].Prob)
		}
	}
}

// TestDeleteModelPurgesPlanNamespace: deleting a model drops exactly its
// plan-cache namespace — the sibling model's plans survive, it keeps
// answering, and a model re-registered under the deleted name compiles
// fresh plans instead of inheriting stale ones.
func TestDeleteModelPurgesPlanNamespace(t *testing.T) {
	ctx := context.Background()
	svc := multiService(t, Config{CacheSize: -1})
	ask := func(model string) float64 {
		t.Helper()
		resp, err := svc.Do(ctx, &ppd.Request{Kind: ppd.KindBool, Query: q1, Model: model})
		if err != nil {
			t.Fatal(err)
		}
		return resp.Prob
	}
	pa := ask("a")
	la := svc.PlanCache().Len()
	if la == 0 {
		t.Fatal("no plans cached for model a")
	}
	pb := ask("b")
	lab := svc.PlanCache().Len()
	if lab != 2*la {
		t.Fatalf("identical models should cache symmetric namespaces: a=%d, a+b=%d", la, lab)
	}
	if err := svc.DeleteModel("a"); err != nil {
		t.Fatal(err)
	}
	if got := svc.PlanCache().Len(); got != lab-la {
		t.Fatalf("delete purged to %d entries, want %d (b's namespace only)", got, lab-la)
	}
	if err := svc.DeleteModel("a"); err == nil {
		t.Fatal("deleting an unknown model should fail")
	}
	if got := ask("b"); math.Float64bits(got) != math.Float64bits(pb) {
		t.Fatalf("model b answer changed after deleting a: %v vs %v", got, pb)
	}
	// Re-register under the deleted name: plans recompile, answers match.
	if err := svc.Registry().Register(registry.Spec{Name: "a", Dataset: "figure1"}); err != nil {
		t.Fatal(err)
	}
	if got := ask("a"); math.Float64bits(got) != math.Float64bits(pa) {
		t.Fatalf("re-registered model a answers %v, want %v", got, pa)
	}
	if got := svc.PlanCache().Len(); got != lab {
		t.Fatalf("re-registered model cached %d entries total, want %d", got, lab)
	}
}
