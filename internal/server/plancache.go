package server

import (
	"container/list"
	"strings"
	"sync"

	"probpref/internal/solver"
)

// PlanCache is a sharded LRU map from namespaced plan keys (model namespace
// + ppd.PlanKey) to compiled union plans. Plans are immutable, so one *Plan
// may be handed to any number of concurrent solves; the cache only guards
// the map itself. Like the solve Cache, keys hash to one of a fixed number
// of independently locked shards by FNV-1a, so concurrent requests compiling
// distinct shapes rarely contend.
//
// Unlike solve-cache entries — whose ppd.GroupKey embeds the session model,
// making stale hits impossible — a plan key does not encode the model's
// labeling; the per-model namespace does. PurgePrefix exists so the service
// can invalidate a model's namespace when the model is deleted (see
// Service.DeleteModel): a later model registered under the same name must
// never inherit plans compiled against the old labeling.
type PlanCache struct {
	shards []*planShard
}

type planShard struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type planEntry struct {
	key string
	p   *solver.Plan
}

// NewPlanCache builds a plan cache holding exactly capacity entries in total
// (minimum 1), spread over up to 16 independently locked shards.
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	shards := defaultShards
	if capacity < shards {
		shards = capacity
	}
	base, extra := capacity/shards, capacity%shards
	c := &PlanCache{shards: make([]*planShard, shards)}
	for i := range c.shards {
		per := base
		if i < extra {
			per++
		}
		c.shards[i] = &planShard{
			capacity: per,
			ll:       list.New(),
			items:    make(map[string]*list.Element),
		}
	}
	return c
}

func (c *PlanCache) shard(key string) *planShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return c.shards[h%uint64(len(c.shards))]
}

// Get returns the cached plan for key and refreshes its recency.
func (c *PlanCache) Get(key string) (*solver.Plan, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.ll.MoveToFront(el)
	return el.Value.(*planEntry).p, true
}

// Put stores the plan for key, evicting the least recently used entry of the
// key's shard when it is full.
func (c *PlanCache) Put(key string, p *solver.Plan) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*planEntry).p = p
		s.ll.MoveToFront(el)
		return
	}
	if s.ll.Len() >= s.capacity {
		old := s.ll.Back()
		s.ll.Remove(old)
		delete(s.items, old.Value.(*planEntry).key)
		s.evictions++
	}
	s.items[key] = s.ll.PushFront(&planEntry{key: key, p: p})
}

// PurgePrefix drops every entry whose key starts with prefix and returns how
// many were dropped. Purged entries count as evictions in Stats. Keys hash
// to shards individually, so a namespace's entries spread across all shards
// and each shard must be scanned; purging is proportional to the cache size,
// which is fine for its one caller (model deletion, a rare admin operation).
func (c *PlanCache) PurgePrefix(prefix string) int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; {
			next := el.Next()
			if e := el.Value.(*planEntry); strings.HasPrefix(e.key, prefix) {
				s.ll.Remove(el)
				delete(s.items, e.key)
				s.evictions++
				n++
			}
			el = next
		}
		s.mu.Unlock()
	}
	return n
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats sums hit/miss/eviction counters across shards.
func (c *PlanCache) Stats() CacheStats {
	st := CacheStats{}
	for _, s := range c.shards {
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.Entries += s.ll.Len()
		st.Capacity += s.capacity
		s.mu.Unlock()
	}
	return st
}

// nsPlanCache namespaces plan-cache keys by model name, mirroring nsCache
// for the solve cache. The namespace carries the labeling identity plan keys
// themselves omit (see PlanCache). It implements ppd.PlanCache.
type nsPlanCache struct {
	prefix string
	c      *PlanCache
}

func (n nsPlanCache) Get(key string) (*solver.Plan, bool) { return n.c.Get(n.prefix + key) }
func (n nsPlanCache) Put(key string, p *solver.Plan)      { n.c.Put(n.prefix+key, p) }
