package server

import (
	"context"

	"probpref/internal/ppd"
)

// This file is the service's compatibility surface: the per-kind methods
// that predate Service.Do / Service.DoBatch, kept as thin wrappers that
// build a ppd.Request and delegate. Results, counters and error
// classification are byte-identical to the Do path (see do_test.go's
// equivalence suite); new code should call Do/DoBatch directly.

// Eval parses and evaluates one query (a CQ or a union of CQs) against
// DefaultModel, sharing the service's solve cache with every other request.
func (s *Service) Eval(query string) (*ppd.EvalResult, error) {
	return s.EvalModelCtx(context.Background(), "", query)
}

// EvalCtx is Eval with cancellation and deadline awareness: a done ctx
// (client disconnect, deadline) aborts in-flight solver layers and sampling
// rounds, and MethodAdaptive budgets each group from the ctx deadline.
func (s *Service) EvalCtx(ctx context.Context, query string) (*ppd.EvalResult, error) {
	return s.EvalModelCtx(ctx, "", query)
}

// EvalModelCtx is EvalCtx routed to the named model ("" means
// DefaultModel). The model stays open — immune to catalog deletion — until
// the evaluation returns.
func (s *Service) EvalModelCtx(ctx context.Context, model, query string) (*ppd.EvalResult, error) {
	resp, err := s.Do(ctx, &ppd.Request{Kind: ppd.KindBool, Query: query, Model: model})
	if err != nil {
		return nil, err
	}
	return resp.EvalResult(), nil
}

// TopK parses and answers the Most-Probable-Session query top(Q, k) against
// DefaultModel with boundEdges upper-bound edges (0 = naive).
func (s *Service) TopK(query string, k, boundEdges int) ([]ppd.SessionProb, *ppd.TopKDiag, error) {
	return s.TopKModelCtx(context.Background(), "", query, k, boundEdges)
}

// TopKCtx is TopK with cancellation and deadline awareness.
func (s *Service) TopKCtx(ctx context.Context, query string, k, boundEdges int) ([]ppd.SessionProb, *ppd.TopKDiag, error) {
	return s.TopKModelCtx(ctx, "", query, k, boundEdges)
}

// TopKModelCtx is TopKCtx routed to the named model ("" means
// DefaultModel).
func (s *Service) TopKModelCtx(ctx context.Context, model, query string, k, boundEdges int) ([]ppd.SessionProb, *ppd.TopKDiag, error) {
	resp, err := s.Do(ctx, &ppd.Request{Kind: ppd.KindTopK, Query: query, Model: model, K: k, BoundEdges: boundEdges})
	if err != nil {
		return nil, nil, err
	}
	return resp.Top, resp.Diag, nil
}

// EvalBatch evaluates a batch of queries as one unit: every query is
// grounded first, the per-session inference groups are deduplicated across
// all queries of the batch (the cross-query generalization of the paper's
// Section 6.4 grouping), cached results are taken from the shared solve
// cache, and only the remaining distinct groups are solved by a bounded
// worker pool. Identical or overlapping queries therefore cost one solver
// invocation per distinct group, not per query. See Service.DoBatch for
// the seeding and accounting semantics.
func (s *Service) EvalBatch(queries []string) (*BatchResult, error) {
	return s.EvalBatchModelCtx(context.Background(), "", queries)
}

// EvalBatchCtx is EvalBatch with cancellation and deadline awareness: once
// ctx is done the worker pool stops claiming groups, in-flight solver
// layers and sampling rounds abort, and the batch returns ctx's error; with
// MethodAdaptive each group's exact-vs-sampling routing is budgeted from
// the ctx deadline.
func (s *Service) EvalBatchCtx(ctx context.Context, queries []string) (*BatchResult, error) {
	return s.EvalBatchModelCtx(ctx, "", queries)
}

// EvalBatchModelCtx is EvalBatchCtx routed to the named model ("" means
// DefaultModel): the whole batch is grounded against that model's database
// and its cache traffic stays inside the model's namespace.
func (s *Service) EvalBatchModelCtx(ctx context.Context, model string, queries []string) (*BatchResult, error) {
	reqs := make([]*ppd.Request, len(queries))
	for i, q := range queries {
		reqs[i] = &ppd.Request{Kind: ppd.KindBool, Query: q, Model: model}
	}
	br, err := s.DoBatch(ctx, reqs)
	if err != nil {
		return nil, err
	}
	out := &BatchResult{
		Results:   make([]*ppd.EvalResult, len(queries)),
		Groups:    br.Groups,
		Instances: br.Instances,
		Solved:    br.Solved,
		CacheHits: br.CacheHits,
	}
	for i, resp := range br.Responses {
		out.Results[i] = resp.EvalResult()
	}
	return out, nil
}

// TopKBatch answers a batch of Most-Probable-Session queries on the bounded
// worker pool. Each query runs the standard top-k machinery (its early
// termination depends on per-query bound ordering, so exact solves are not
// pre-deduplicated across queries); cross-query sharing still happens
// through the shared solve cache, so repeated or overlapping queries reuse
// each other's exact per-group results.
func (s *Service) TopKBatch(reqs []TopKRequest) ([]*TopKResult, error) {
	return s.TopKBatchModelCtx(context.Background(), "", reqs)
}

// TopKBatchCtx is TopKBatch with cancellation and deadline awareness (see
// EvalBatchCtx).
func (s *Service) TopKBatchCtx(ctx context.Context, reqs []TopKRequest) ([]*TopKResult, error) {
	return s.TopKBatchModelCtx(ctx, "", reqs)
}

// TopKBatchModelCtx is TopKBatchCtx routed to the named model ("" means
// DefaultModel).
func (s *Service) TopKBatchModelCtx(ctx context.Context, model string, reqs []TopKRequest) ([]*TopKResult, error) {
	dreqs := make([]*ppd.Request, len(reqs))
	for i, r := range reqs {
		dreqs[i] = &ppd.Request{Kind: ppd.KindTopK, Query: r.Query, Model: model, K: r.K, BoundEdges: r.Bound}
	}
	br, err := s.DoBatch(ctx, dreqs)
	if err != nil {
		return nil, err
	}
	out := make([]*TopKResult, len(reqs))
	for i, resp := range br.Responses {
		out[i] = &TopKResult{Top: resp.Top, Diag: resp.Diag}
	}
	return out, nil
}
