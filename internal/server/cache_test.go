package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheGetPut(t *testing.T) {
	c := NewCache(64)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 0.25)
	if p, ok := c.Get("a"); !ok || p != 0.25 {
		t.Fatalf("Get(a) = %v, %v", p, ok)
	}
	c.Put("a", 0.5) // overwrite refreshes, does not grow
	if p, _ := c.Get("a"); p != 0.5 {
		t.Fatalf("overwrite lost: %v", p)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	// A capacity-1 cache has a single shard with one slot, so the eviction
	// order is observable.
	c := NewCache(1)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted")
	}
	if p, ok := c.Get("b"); !ok || p != 2 {
		t.Fatalf("b lost: %v, %v", p, ok)
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestCacheCapacitySpreadsOverShards(t *testing.T) {
	c := NewCache(1024)
	for i := 0; i < 4096; i++ {
		c.Put(fmt.Sprintf("key-%d", i), float64(i))
	}
	st := c.Stats()
	if st.Entries > st.Capacity {
		t.Fatalf("entries %d exceed capacity %d", st.Entries, st.Capacity)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions after overfilling")
	}
}

// TestCacheConcurrent exercises all shard paths under the race detector.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("key-%d", (g*31+i)%200)
				if p, ok := c.Get(key); ok && (p < 0 || p >= 200) {
					t.Errorf("corrupt value %v for %s", p, key)
					return
				}
				c.Put(key, float64((g*31+i)%200))
			}
		}(g)
	}
	wg.Wait()
	c.Stats() // must not race with itself
}

func TestCacheExactCapacity(t *testing.T) {
	for _, capacity := range []int{1, 7, 16, 17, 100, 1024} {
		c := NewCache(capacity)
		if got := c.Stats().Capacity; got != capacity {
			t.Errorf("NewCache(%d): total capacity %d", capacity, got)
		}
	}
	if got := NewCache(0).Stats().Capacity; got != 1 {
		t.Errorf("NewCache(0): total capacity %d, want 1", got)
	}
}
