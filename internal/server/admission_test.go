package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// Admission-control tests: a saturated service must shed query and ingest
// load with 503 + Retry-After while probes and management routes keep
// answering, and the gate must hand slots back exactly once per admitted
// request. The hammer tests run under -race in CI.

// pinStreams occupies n gate slots with NDJSON streams held open mid-row
// and returns a release function plus a WaitGroup that ends when every
// pinned stream has drained to completion.
func pinStreams(t *testing.T, svc *Service, srv *httptest.Server, n int) (release func(), done *sync.WaitGroup) {
	t.Helper()
	rel := make(chan struct{})
	pinned := make(chan struct{}, n)
	svc.streamRowHook = func(ctx context.Context) {
		select {
		case pinned <- struct{}{}:
		default:
		}
		select {
		case <-rel:
		case <-ctx.Done():
		}
	}
	var wg sync.WaitGroup
	body := fmt.Sprintf(`{"kind":"topk","query":%q,"k":10,"stream":true}`, q1)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := srv.Client().Post(srv.URL+"/v1/query", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("pinned stream: status %d", resp.StatusCode)
			}
			io.Copy(io.Discard, resp.Body)
		}()
	}
	for i := 0; i < n; i++ {
		select {
		case <-pinned:
		case <-time.After(10 * time.Second):
			t.Fatal("streams never pinned")
		}
	}
	var once sync.Once
	return func() { once.Do(func() { close(rel) }) }, &wg
}

// shedAssert checks the full 503 contract on one response: status,
// Retry-After header, and the JSON body echo.
func shedAssert(t *testing.T, resp *http.Response) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d, want 503\n%s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After header %q, want \"1\"", got)
	}
	var body struct {
		Error      string `json:"error"`
		RetryAfter int    `json:"retry_after"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding shed body: %v", err)
	}
	if body.Error == "" || body.RetryAfter != 1 {
		t.Errorf("shed body %+v, want error text and retry_after 1", body)
	}
}

// TestSaturatedServiceSheds pins the single admission slot and requires
// query and ingest to shed with the full 503 contract while /healthz,
// /models and /stats — the probe and drain surface — keep answering.
func TestSaturatedServiceSheds(t *testing.T) {
	svc := figure1Service(t, Config{MaxInFlight: 1, MaxQueue: -1, Workers: 2})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	release, done := pinStreams(t, svc, srv, 1)
	defer release()

	queryBody := fmt.Sprintf(`{"kind":"bool","query":%q}`, q1)
	resp, err := srv.Client().Post(srv.URL+"/v1/query", "application/json", strings.NewReader(queryBody))
	if err != nil {
		t.Fatal(err)
	}
	shedAssert(t, resp)
	ing, err := srv.Client().Post(srv.URL+"/v1/sessions", "application/json",
		strings.NewReader(`{"pref":"P","sessions":[{"key":["Eve","7/7"],"sigma":[0,1,2,3],"phi":0.4}]}`))
	if err != nil {
		t.Fatal(err)
	}
	shedAssert(t, ing)

	// The ungated surface must stay reachable on a saturated process.
	for _, path := range []string{"/healthz", "/models", "/stats"} {
		r, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != 200 {
			t.Errorf("GET %s while saturated: status %d, want 200", path, r.StatusCode)
		}
	}
	st := svc.Stats()
	if st.Sheds != 2 {
		t.Errorf("Stats.Sheds = %d, want 2", st.Sheds)
	}
	if st.InFlight != 1 {
		t.Errorf("Stats.InFlight = %d, want 1", st.InFlight)
	}

	release()
	done.Wait()
	// Slot handed back: the same request now passes.
	after, err := srv.Client().Post(srv.URL+"/v1/query", "application/json", strings.NewReader(queryBody))
	if err != nil {
		t.Fatal(err)
	}
	after.Body.Close()
	if after.StatusCode != 200 {
		t.Errorf("query after release: status %d, want 200", after.StatusCode)
	}
	if got := svc.Stats().InFlight; got != 0 {
		t.Errorf("InFlight after drain = %d, want 0", got)
	}
}

// TestAdmissionQueueWaits: a request that finds the slot busy but the
// queue empty waits and is served after the slot frees; a second waiter
// overflows the depth-1 queue and sheds immediately.
func TestAdmissionQueueWaits(t *testing.T) {
	svc := figure1Service(t, Config{MaxInFlight: 1, MaxQueue: 1, Workers: 2})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	release, done := pinStreams(t, svc, srv, 1)
	defer release()

	queryBody := fmt.Sprintf(`{"kind":"bool","query":%q}`, q1)
	queuedResult := make(chan int, 1)
	go func() {
		resp, err := srv.Client().Post(srv.URL+"/v1/query", "application/json", strings.NewReader(queryBody))
		if err != nil {
			queuedResult <- -1
			return
		}
		resp.Body.Close()
		queuedResult <- resp.StatusCode
	}()
	deadline := time.Now().Add(10 * time.Second)
	for svc.Stats().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	over, err := srv.Client().Post(srv.URL+"/v1/query", "application/json", strings.NewReader(queryBody))
	if err != nil {
		t.Fatal(err)
	}
	shedAssert(t, over)

	release()
	done.Wait()
	if code := <-queuedResult; code != 200 {
		t.Fatalf("queued request finished with status %d, want 200", code)
	}
}

// TestShedHammer fills every slot, fires a burst of concurrent requests,
// and requires each one to shed with the full contract — no request may
// hang, panic, or leak a slot. The -race run doubles as the data-race
// check on the gate counters.
func TestShedHammer(t *testing.T) {
	const slots, burst = 2, 24
	svc := figure1Service(t, Config{MaxInFlight: slots, MaxQueue: -1, Workers: 2})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	release, done := pinStreams(t, svc, srv, slots)
	defer release()

	queryBody := fmt.Sprintf(`{"kind":"bool","query":%q}`, q1)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := srv.Client().Post(srv.URL+"/v1/query", "application/json", strings.NewReader(queryBody))
			if err != nil {
				t.Error(err)
				return
			}
			shedAssert(t, resp)
		}()
	}
	wg.Wait()
	if got := svc.Stats().Sheds; got != burst {
		t.Errorf("Stats.Sheds = %d, want %d", got, burst)
	}
	release()
	done.Wait()
	if got := svc.Stats().InFlight; got != 0 {
		t.Errorf("InFlight after hammer = %d, want 0 (slot leak)", got)
	}
}

// TestAdmissionDisabled: a negative MaxInFlight turns the gate off
// entirely — the handler chain is the bare handler.
func TestAdmissionDisabled(t *testing.T) {
	svc := figure1Service(t, Config{MaxInFlight: -1})
	if svc.gate != nil {
		t.Fatal("MaxInFlight < 0 still built a gate")
	}
}

// TestGateContextCancelWhileQueued: a caller that gives up while waiting
// in the queue counts as a shed and never occupies a slot.
func TestGateContextCancelWhileQueued(t *testing.T) {
	g := newGate(1, 1, 1)
	if !g.admit(context.Background()) {
		t.Fatal("empty gate refused")
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if g.admit(ctx) {
		t.Fatal("admit succeeded after context cancel")
	}
	if g.sheds.Load() != 1 {
		t.Fatalf("sheds = %d, want 1", g.sheds.Load())
	}
	g.release()
	if g.inFlight() != 0 {
		t.Fatalf("inFlight = %d, want 0", g.inFlight())
	}
}
