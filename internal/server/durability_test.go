package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"probpref/internal/registry"
	"probpref/internal/wal"
)

// End-to-end crash recovery at the service layer: a daemon that acked
// ingest batches over a WAL is killed (its disk state copied at an ack
// boundary — with SyncAlways every ack IS a record boundary), restarted,
// and must answer queries byte-identically to the uncrashed process.

// walService assembles the durable-ingest stack over the given directories
// and returns the service; the log is closed via t.Cleanup.
func walService(t *testing.T, walDir, snapDir string) *Service {
	t.Helper()
	l, err := wal.Open(walDir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	reg := registry.New()
	reg.SetSnapshotDir(snapDir)
	if err := reg.SetWAL(l); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(registry.Spec{Name: DefaultModel, Dataset: "figure1", Preload: true}); err != nil {
		t.Fatal(err)
	}
	// Caches off: answer bytes must not depend on how warm the process is,
	// only on the model state — the property under test.
	return NewMulti(reg, Config{CacheSize: -1, PlanCacheSize: -1})
}

// copyTree is the kill: duplicate the on-disk state byte for byte.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		t.Fatalf("copying %s: %v", src, err)
	}
}

// queryBodies is the fixed probe set compared byte-for-byte. Deterministic
// kinds only (exact method answers all of them on figure1).
var queryBodies = []string{
	fmt.Sprintf(`{"kind":"bool","query":%q,"per_session":true}`, q1),
	fmt.Sprintf(`{"kind":"topk","query":%q,"k":10}`, q1),
	fmt.Sprintf(`{"kind":"countdist","query":%q}`, q1),
}

// answers runs the probe set against a service and returns the raw bodies.
func answers(t *testing.T, svc *Service) [][]byte {
	t.Helper()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	out := make([][]byte, len(queryBodies))
	for i, body := range queryBodies {
		resp, err := srv.Client().Post(srv.URL+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("query %s: status %d\n%s", body, resp.StatusCode, b)
		}
		out[i] = b
	}
	return out
}

// TestCrashRecoveryBitIdenticalAnswers ingests three batches through the
// HTTP surface, captures the disk state after every ack, and requires each
// restarted process to answer the probe set byte-identically to the live
// process at the same ingest depth — including a capture whose WAL tail is
// torn (crash mid-write of the next batch) and a restart whose snapshot
// directory has become unwritable (recovery from the log alone).
func TestCrashRecoveryBitIdenticalAnswers(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	snapDir := t.TempDir()
	svc := walService(t, walDir, snapDir)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	captures := t.TempDir()
	type point struct {
		walDir, snapDir string
		want            [][]byte
	}
	points := make([]point, 0, 3)
	for i, key := range []string{"Eve", "Frank", "Gail"} {
		body := fmt.Sprintf(`{"pref":"P","sessions":[{"key":[%q,"9/7"],"sigma":[0,1,2,3],"phi":0.4}]}`, key)
		resp, err := srv.Client().Post(srv.URL+"/v1/sessions", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("ingest %d: status %d", i, resp.StatusCode)
		}
		// The 200 has been written: everything acked is on disk (SyncAlways).
		p := point{
			walDir:  filepath.Join(captures, fmt.Sprintf("c%d", i), "wal"),
			snapDir: filepath.Join(captures, fmt.Sprintf("c%d", i), "snap"),
		}
		copyTree(t, walDir, p.walDir)
		copyTree(t, snapDir, p.snapDir)
		p.want = answers(t, svc) // the uncrashed process's answers at depth i+1
		points = append(points, p)
	}

	for i, p := range points {
		restarted := walService(t, p.walDir, p.snapDir)
		for j, got := range answers(t, restarted) {
			if !bytes.Equal(got, p.want[j]) {
				t.Errorf("capture %d, probe %d: restarted answer differs\n-- restarted --\n%s\n-- uncrashed --\n%s", i, j, got, p.want[j])
			}
		}
	}

	// Torn tail: damage the final record of the depth-3 capture so the WAL
	// holds two complete batches and half of a third; the restart must
	// answer exactly like the uncrashed process at depth 2.
	torn := point{
		walDir:  filepath.Join(captures, "torn", "wal"),
		snapDir: filepath.Join(captures, "torn", "snap"),
	}
	copyTree(t, points[2].walDir, torn.walDir)
	copyTree(t, points[1].snapDir, torn.snapDir) // snapshot as of depth 2
	segs, err := filepath.Glob(filepath.Join(torn.walDir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-7); err != nil {
		t.Fatal(err)
	}
	tornSvc := walService(t, torn.walDir, torn.snapDir)
	for j, got := range answers(t, tornSvc) {
		if !bytes.Equal(got, points[1].want[j]) {
			t.Errorf("torn tail, probe %d: answer differs from uncrashed depth-2 process\n-- restarted --\n%s\n-- uncrashed --\n%s", j, got, points[1].want[j])
		}
	}

	// Snapshot directory lost: restart depth-3 with a bogus snapshot
	// location; the generator rebuild plus WAL replay alone must reproduce
	// the uncrashed answers (snapshot writes fail, queries do not).
	noSnap := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(noSnap, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	logOnly := point{walDir: filepath.Join(captures, "logonly", "wal")}
	copyTree(t, points[2].walDir, logOnly.walDir)
	logSvc := walService(t, logOnly.walDir, noSnap)
	for j, got := range answers(t, logSvc) {
		if !bytes.Equal(got, points[2].want[j]) {
			t.Errorf("log-only recovery, probe %d: answer differs\n-- restarted --\n%s\n-- uncrashed --\n%s", j, got, points[2].want[j])
		}
	}
	if n := logSvc.Registry().SnapshotErrors(); n == 0 {
		t.Error("unwritable snapshot dir recorded no snapshot_errors")
	}
}
