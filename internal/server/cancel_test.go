package server

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"probpref/internal/dataset"
	"probpref/internal/ppd"
)

// Cancellation tests for the end-to-end context plumbing: a cancelled batch
// must stop burning CPU (the worker pool drains, no goroutines leak) and
// surface the context error, never a panic or a fabricated result. Run
// under -race (CI does).

// pollsService builds a service over a polls database large enough that a
// batch has many distinct inference groups to fan out.
func pollsService(t *testing.T, cfg Config) *Service {
	t.Helper()
	db, err := dataset.Polls(dataset.PollsConfig{Candidates: 12, Voters: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return New(db, cfg)
}

// pollsBatch returns distinct queries so cross-query dedup leaves many
// groups pending.
func pollsBatch(n int) []string {
	qs := make([]string, n)
	parties := []string{"D", "R"}
	sexes := []string{"M", "F"}
	for i := range qs {
		qs[i] = fmt.Sprintf(`P(_, _; l; r), C(l, %s, %s, _, _, _), C(r, %s, %s, _, _, _)`,
			parties[i%2], sexes[(i/2)%2], parties[(i+1)%2], sexes[(i/2+1)%2])
	}
	return qs
}

// waitGoroutines polls until the goroutine count drops back to at most
// base+slack, failing after the deadline. The slack absorbs runtime
// housekeeping goroutines.
func waitGoroutines(t *testing.T, base int, what string) {
	t.Helper()
	const slack = 3
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("%s: %d goroutines still running (baseline %d):\n%s", what, n, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEvalBatchCancelDrainsPool cancels mid-EvalBatch and asserts the pool
// drains without goroutine leaks and the error is the context error.
func TestEvalBatchCancelDrainsPool(t *testing.T) {
	svc := pollsService(t, Config{Workers: 4, CacheSize: -1})
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := svc.EvalBatchCtx(ctx, pollsBatch(16))
		done <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the fan-out start
	cancel()

	select {
	case err := <-done:
		if err == nil {
			t.Log("batch finished before the cancel landed; no cancellation to assert")
		} else if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled in error chain, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled batch did not return within 10s")
	}
	waitGoroutines(t, base, "after cancelled EvalBatch")
}

// TestEvalBatchPreCancelled asserts a batch under an already-cancelled
// context returns the context error immediately, not a partial result or a
// panic.
func TestEvalBatchPreCancelled(t *testing.T) {
	svc := pollsService(t, Config{Workers: 4, CacheSize: -1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	br, err := svc.EvalBatchCtx(ctx, pollsBatch(4))
	if br != nil {
		t.Fatalf("want nil result from pre-cancelled batch, got %+v", br)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The error must map to an evaluation failure (500), not a parse error.
	var ee *evalError
	if !errors.As(err, &ee) {
		t.Fatalf("want evalError wrapper, got %T: %v", err, err)
	}
}

// TestTopKBatchCancelDrainsPool does the same for the top-k fan-out.
func TestTopKBatchCancelDrainsPool(t *testing.T) {
	svc := pollsService(t, Config{Workers: 4, CacheSize: -1})
	base := runtime.NumGoroutine()

	reqs := make([]TopKRequest, 8)
	for i, q := range pollsBatch(8) {
		reqs[i] = TopKRequest{Query: q, K: 3, Bound: 1}
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := svc.TopKBatchCtx(ctx, reqs)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled in error chain, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled top-k batch did not return within 10s")
	}
	waitGoroutines(t, base, "after cancelled TopKBatch")
}

// TestEvalBatchDeadlineAdaptiveDegrades asserts that with the adaptive
// method an (effectively expired) deadline yields sampled answers with
// non-zero reported half-widths instead of an error — the planner's
// degrade-gracefully contract — while the exact methods abort.
func TestEvalBatchDeadlineAdaptiveDegrades(t *testing.T) {
	svc := pollsService(t, Config{Method: ppd.MethodAdaptive, Workers: 2, CacheSize: -1})
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // ensure the deadline has passed
	br, err := svc.EvalBatchCtx(ctx, pollsBatch(2))
	if err != nil {
		t.Fatalf("adaptive batch under expired deadline: %v", err)
	}
	for qi, res := range br.Results {
		if res.Plan == nil {
			t.Fatalf("query %d: no plan attached", qi)
		}
		if res.Plan.SampledGroups == 0 && res.Solves > 0 {
			t.Fatalf("query %d: expired budget but %d groups solved exactly", qi, res.Plan.ExactGroups)
		}
		if res.Solves > 0 && res.Plan.MaxHalfWidth <= 0 {
			t.Fatalf("query %d: sampled answers carry no half-width: %+v", qi, res.Plan)
		}
	}
}

// TestEvalBatchSharedGroupPlans: a group shared by several queries must
// appear in every referencing query's plan — the batch Solves accounting
// attributes a shared group to its first query, but each query's plan has
// to stay consistent with its own half-widths.
func TestEvalBatchSharedGroupPlans(t *testing.T) {
	svc := pollsService(t, Config{Method: ppd.MethodAdaptive, Workers: 2, CacheSize: -1})
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	q := pollsBatch(1)[0]
	br, err := svc.EvalBatchCtx(ctx, []string{q, q})
	if err != nil {
		t.Fatal(err)
	}
	first, second := br.Results[0], br.Results[1]
	if first.Solves == 0 || second.Solves != 0 {
		t.Fatalf("cost attribution changed: solves %d/%d", first.Solves, second.Solves)
	}
	for qi, res := range br.Results {
		if res.Plan == nil || res.Plan.SampledGroups == 0 {
			t.Fatalf("query %d: plan missing sampled groups: %+v", qi, res.Plan)
		}
		if res.Plan.CountHalfWidth <= 0 {
			t.Fatalf("query %d: no propagated half-width: %+v", qi, res.Plan)
		}
	}
	if first.Plan.SampledGroups != second.Plan.SampledGroups ||
		first.Plan.MaxHalfWidth != second.Plan.MaxHalfWidth {
		t.Fatalf("identical queries report different plans: %+v vs %+v", first.Plan, second.Plan)
	}
}

// TestHTTPEvalTimeoutAdaptive drives the degrade path through the HTTP
// front end: timeout_ms with the adaptive method returns 200 with a plan
// reporting sampled groups.
func TestHTTPEvalTimeoutAdaptive(t *testing.T) {
	svc := pollsService(t, Config{Method: ppd.MethodAdaptive, Workers: 2, CacheSize: -1})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	var resp EvalResponse
	if code := get(t, srv, "/eval?timeout_ms=1&q="+queryParam(pollsBatch(1)[0]), &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.Results) != 1 || resp.Results[0].Plan == nil {
		t.Fatalf("response missing plan: %+v", resp)
	}
	plan := resp.Results[0].Plan
	if plan.SampledGroups == 0 || plan.MaxHalfWidth <= 0 {
		t.Fatalf("1ms budget should sample with error bars, got %+v", plan)
	}
}
