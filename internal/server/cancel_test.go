package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"probpref/internal/dataset"
	"probpref/internal/ppd"
)

// Cancellation tests for the end-to-end context plumbing: a cancelled batch
// must stop burning CPU (the worker pool drains, no goroutines leak) and
// surface the context error, never a panic or a fabricated result. Run
// under -race (CI does).

// pollsService builds a service over a polls database large enough that a
// batch has many distinct inference groups to fan out.
func pollsService(t *testing.T, cfg Config) *Service {
	t.Helper()
	db, err := dataset.Polls(dataset.PollsConfig{Candidates: 12, Voters: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return New(db, cfg)
}

// pollsBatch returns distinct queries so cross-query dedup leaves many
// groups pending.
func pollsBatch(n int) []string {
	qs := make([]string, n)
	parties := []string{"D", "R"}
	sexes := []string{"M", "F"}
	for i := range qs {
		qs[i] = fmt.Sprintf(`P(_, _; l; r), C(l, %s, %s, _, _, _), C(r, %s, %s, _, _, _)`,
			parties[i%2], sexes[(i/2)%2], parties[(i+1)%2], sexes[(i/2+1)%2])
	}
	return qs
}

// waitGoroutines polls until the goroutine count drops back to at most
// base+slack, failing after the deadline. The slack absorbs runtime
// housekeeping goroutines.
func waitGoroutines(t *testing.T, base int, what string) {
	t.Helper()
	const slack = 3
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("%s: %d goroutines still running (baseline %d):\n%s", what, n, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEvalBatchCancelDrainsPool cancels mid-EvalBatch and asserts the pool
// drains without goroutine leaks and the error is the context error.
func TestEvalBatchCancelDrainsPool(t *testing.T) {
	svc := pollsService(t, Config{Workers: 4, CacheSize: -1})
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := svc.EvalBatchCtx(ctx, pollsBatch(16))
		done <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the fan-out start
	cancel()

	select {
	case err := <-done:
		if err == nil {
			t.Log("batch finished before the cancel landed; no cancellation to assert")
		} else if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled in error chain, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled batch did not return within 10s")
	}
	waitGoroutines(t, base, "after cancelled EvalBatch")
}

// TestEvalBatchPreCancelled asserts a batch under an already-cancelled
// context returns the context error immediately, not a partial result or a
// panic.
func TestEvalBatchPreCancelled(t *testing.T) {
	svc := pollsService(t, Config{Workers: 4, CacheSize: -1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	br, err := svc.EvalBatchCtx(ctx, pollsBatch(4))
	if br != nil {
		t.Fatalf("want nil result from pre-cancelled batch, got %+v", br)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The error must map to an evaluation failure (500), not a parse error.
	var ee *evalError
	if !errors.As(err, &ee) {
		t.Fatalf("want evalError wrapper, got %T: %v", err, err)
	}
}

// TestTopKBatchCancelDrainsPool does the same for the top-k fan-out.
func TestTopKBatchCancelDrainsPool(t *testing.T) {
	svc := pollsService(t, Config{Workers: 4, CacheSize: -1})
	base := runtime.NumGoroutine()

	reqs := make([]TopKRequest, 8)
	for i, q := range pollsBatch(8) {
		reqs[i] = TopKRequest{Query: q, K: 3, Bound: 1}
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := svc.TopKBatchCtx(ctx, reqs)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled in error chain, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled top-k batch did not return within 10s")
	}
	waitGoroutines(t, base, "after cancelled TopKBatch")
}

// TestEvalBatchDeadlineAdaptiveDegrades asserts that with the adaptive
// method an (effectively expired) deadline yields sampled answers with
// non-zero reported half-widths instead of an error — the planner's
// degrade-gracefully contract — while the exact methods abort.
func TestEvalBatchDeadlineAdaptiveDegrades(t *testing.T) {
	svc := pollsService(t, Config{Method: ppd.MethodAdaptive, Workers: 2, CacheSize: -1})
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // ensure the deadline has passed
	br, err := svc.EvalBatchCtx(ctx, pollsBatch(2))
	if err != nil {
		t.Fatalf("adaptive batch under expired deadline: %v", err)
	}
	for qi, res := range br.Results {
		if res.Plan == nil {
			t.Fatalf("query %d: no plan attached", qi)
		}
		if res.Plan.SampledGroups == 0 && res.Solves > 0 {
			t.Fatalf("query %d: expired budget but %d groups solved exactly", qi, res.Plan.ExactGroups)
		}
		if res.Solves > 0 && res.Plan.MaxHalfWidth <= 0 {
			t.Fatalf("query %d: sampled answers carry no half-width: %+v", qi, res.Plan)
		}
	}
}

// TestEvalBatchSharedGroupPlans: a group shared by several queries must
// appear in every referencing query's plan — the batch Solves accounting
// attributes a shared group to its first query, but each query's plan has
// to stay consistent with its own half-widths.
func TestEvalBatchSharedGroupPlans(t *testing.T) {
	svc := pollsService(t, Config{Method: ppd.MethodAdaptive, Workers: 2, CacheSize: -1})
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	q := pollsBatch(1)[0]
	br, err := svc.EvalBatchCtx(ctx, []string{q, q})
	if err != nil {
		t.Fatal(err)
	}
	first, second := br.Results[0], br.Results[1]
	if first.Solves == 0 || second.Solves != 0 {
		t.Fatalf("cost attribution changed: solves %d/%d", first.Solves, second.Solves)
	}
	for qi, res := range br.Results {
		if res.Plan == nil || res.Plan.SampledGroups == 0 {
			t.Fatalf("query %d: plan missing sampled groups: %+v", qi, res.Plan)
		}
		if res.Plan.CountHalfWidth <= 0 {
			t.Fatalf("query %d: no propagated half-width: %+v", qi, res.Plan)
		}
	}
	if first.Plan.SampledGroups != second.Plan.SampledGroups ||
		first.Plan.MaxHalfWidth != second.Plan.MaxHalfWidth {
		t.Fatalf("identical queries report different plans: %+v vs %+v", first.Plan, second.Plan)
	}
}

// TestV1StreamCancelStopsEmitting cancels a /v1/query NDJSON stream after
// the first row and asserts the stream terminates early — the client
// observes its context error instead of the remaining rows — and that the
// server handler goroutine winds down without leaks. Run under -race (CI
// does).
func TestV1StreamCancelStopsEmitting(t *testing.T) {
	svc := pollsService(t, Config{Workers: 2, CacheSize: -1})
	// The hook holds the stream after each emitted row until the handler's
	// own context reports the cancellation, so the cut-off is deterministic:
	// exactly one row escapes, however fast the sockets drain.
	svc.streamRowHook = func(ctx context.Context) { <-ctx.Done() }
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	base := runtime.NumGoroutine()

	// Ask for every session of the polls fixture so the stream has many
	// rows to cut short.
	body := `{"kind":"topk","query":"P(_, _; l; r), C(l, D, M, _, _, _), C(r, R, F, _, _, _)","k":60,"bound":0,"stream":true}`
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/query", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("missing summary line")
	}
	if !sc.Scan() {
		t.Fatal("missing first row")
	}
	rows := 1
	cancel()
	for sc.Scan() {
		if strings.Contains(sc.Text(), `"error"`) {
			break // the stream's terminal error line, not a data row
		}
		rows++
	}
	// The client either observes its own cancellation or the server's
	// terminal error line, depending on which side noticed first; in both
	// cases the data rows stop immediately.
	if err := sc.Err(); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("unexpected stream error: %v", err)
	}
	if rows != 1 {
		t.Fatalf("cancelled stream delivered %d data rows, want exactly 1", rows)
	}
	waitGoroutines(t, base, "after cancelled /v1/query stream")
}

// TestV1StreamDeadlineMidStream: a timeout_ms deadline that expires
// between rows ends the stream with an {"error": ...} line rather than
// hanging or panicking. The hook holds the stream after the first row
// until the request deadline has provably fired, so the expiry lands
// mid-stream deterministically.
func TestV1StreamDeadlineMidStream(t *testing.T) {
	// The tiny figure1 fixture keeps the pre-stream evaluation in the
	// microsecond range, so the 1s budget cannot plausibly expire before
	// the first row even on a loaded -race runner; the hook then parks the
	// stream after row one until the deadline fires.
	svc := figure1Service(t, Config{Workers: 2, CacheSize: -1})
	svc.streamRowHook = func(ctx context.Context) { <-ctx.Done() }
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body := `{"kind":"topk","query":"P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)","k":3,"bound":1,"timeout_ms":1000,"stream":true}`
	resp, err := srv.Client().Post(srv.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	rows, errLines := 0, 0
	var last string
	for sc.Scan() {
		last = sc.Text()
		if strings.Contains(last, `"error"`) {
			errLines++
		} else {
			rows++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != 2 { // summary + exactly one data row before the deadline
		t.Fatalf("got %d non-error lines, want 2", rows)
	}
	if errLines != 1 || !strings.Contains(last, "deadline") {
		t.Fatalf("want a terminal deadline error line, got %q (%d error lines)", last, errLines)
	}
}

// TestV1StreamCompletesWithoutDeadline pins the happy path: with no hook
// and a generous timeout, every row arrives and no error line is emitted.
func TestV1StreamCompletesWithoutDeadline(t *testing.T) {
	svc := pollsService(t, Config{Workers: 2, CacheSize: -1})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	body := `{"kind":"topk","query":"P(_, _; l; r), C(l, D, M, _, _, _), C(r, R, F, _, _, _)","k":5,"bound":1,"timeout_ms":60000,"stream":true}`
	resp, err := srv.Client().Post(srv.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	lines := 0
	for sc.Scan() {
		if strings.Contains(sc.Text(), `"error"`) {
			t.Fatalf("unexpected error line: %s", sc.Text())
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != 6 { // summary + 5 rows
		t.Fatalf("got %d lines, want 6", lines)
	}
}

// TestHTTPEvalTimeoutAdaptive drives the degrade path through the HTTP
// front end: timeout_ms with the adaptive method returns 200 with a plan
// reporting sampled groups.
func TestHTTPEvalTimeoutAdaptive(t *testing.T) {
	svc := pollsService(t, Config{Method: ppd.MethodAdaptive, Workers: 2, CacheSize: -1})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	var resp EvalResponse
	if code := get(t, srv, "/eval?timeout_ms=1&q="+queryParam(pollsBatch(1)[0]), &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.Results) != 1 || resp.Results[0].Plan == nil {
		t.Fatalf("response missing plan: %+v", resp)
	}
	plan := resp.Results[0].Plan
	if plan.SampledGroups == 0 || plan.MaxHalfWidth <= 0 {
		t.Fatalf("1ms budget should sample with error bars, got %+v", plan)
	}
}
