package server

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"probpref/internal/ppd"
)

// Equivalence suite for the service layer: every legacy Service method must
// return byte-identical results to the corresponding Do / DoBatch call on a
// service over the same seeded database. Fresh services isolate the solve
// cache so both sides start cold.

const doDemoQuery = `P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`
const doUnionQuery = doDemoQuery + ` | P(_, _; c1; c2), C(c1, D, _, _, JD, _), C(c2, R, _, _, _, _)`

// canonJSON serializes a projection of a result for byte comparison.
func canonJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(serverCanon(v))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func serverCanon(v any) any {
	switch x := v.(type) {
	case []ppd.SessionProb:
		out := make([]map[string]any, len(x))
		for i, sp := range x {
			out[i] = map[string]any{"key": sp.Session.Key, "prob": sp.Prob}
		}
		return out
	case *ppd.EvalResult:
		return map[string]any{
			"prob": x.Prob, "count": x.Count, "per": serverCanon(x.PerSession),
			"solves": x.Solves, "cacheHits": x.CacheHits, "plan": x.Plan,
		}
	case *ppd.TopKDiag:
		if x == nil {
			return nil
		}
		return map[string]any{
			"bound": x.BoundSolves, "exact": x.ExactSolves,
			"sessions": x.SessionsEvaluated, "cacheHits": x.CacheHits, "plan": x.Plan,
		}
	case *BatchResult:
		results := make([]any, len(x.Results))
		for i, r := range x.Results {
			results[i] = serverCanon(r)
		}
		return map[string]any{
			"results": results, "groups": x.Groups, "instances": x.Instances,
			"solved": x.Solved, "cacheHits": x.CacheHits,
		}
	default:
		return v
	}
}

func mustEqual(t *testing.T, what string, legacy, unified []byte) {
	t.Helper()
	if !bytes.Equal(legacy, unified) {
		t.Errorf("%s: legacy and Do results differ\n-- legacy --\n%s\n-- do --\n%s", what, legacy, unified)
	}
}

// TestServiceLegacyMatchesDo: single-query legacy methods against Do. Both
// sides run on fresh services (cold caches) with the same seed.
func TestServiceLegacyMatchesDo(t *testing.T) {
	ctx := context.Background()
	for _, query := range []string{doDemoQuery, doUnionQuery} {
		res, err := figure1Service(t, Config{}).Eval(query)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := figure1Service(t, Config{}).Do(ctx, &ppd.Request{Kind: ppd.KindBool, Query: query})
		if err != nil {
			t.Fatal(err)
		}
		mustEqual(t, "Eval "+query, canonJSON(t, res), canonJSON(t, resp.EvalResult()))

		top, diag, err := figure1Service(t, Config{}).TopK(query, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		topResp, err := figure1Service(t, Config{}).Do(ctx, &ppd.Request{Kind: ppd.KindTopK, Query: query, K: 2, BoundEdges: 1})
		if err != nil {
			t.Fatal(err)
		}
		mustEqual(t, "TopK.top "+query, canonJSON(t, top), canonJSON(t, topResp.Top))
		mustEqual(t, "TopK.diag "+query, canonJSON(t, diag), canonJSON(t, topResp.Diag))
	}
}

// TestServiceEvalBatchMatchesDo: EvalBatch must be byte-identical to the
// corresponding DoBatch of bool requests — the grouped path underneath is
// shared — and, with the cache disabled and an exact method, each batched
// result must also equal the standalone Do answer of its query.
func TestServiceEvalBatchMatchesDo(t *testing.T) {
	ctx := context.Background()
	queries := []string{doDemoQuery, doUnionQuery, doDemoQuery}

	br, err := figure1Service(t, Config{}).EvalBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]*ppd.Request, len(queries))
	for i, q := range queries {
		reqs[i] = &ppd.Request{Kind: ppd.KindBool, Query: q}
	}
	dr, err := figure1Service(t, Config{}).DoBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	legacy := &BatchResult{
		Results:   make([]*ppd.EvalResult, len(queries)),
		Groups:    dr.Groups,
		Instances: dr.Instances,
		Solved:    dr.Solved,
		CacheHits: dr.CacheHits,
	}
	for i, resp := range dr.Responses {
		legacy.Results[i] = resp.EvalResult()
	}
	mustEqual(t, "EvalBatch", canonJSON(t, br), canonJSON(t, legacy))

	// Cold standalone Do answers match the batched per-query results up to
	// the batch-only accounting (cache off, exact method: probabilities and
	// per-session rows are identical; Solves attribution is batch-scoped).
	for i, q := range queries {
		resp, err := figure1Service(t, Config{CacheSize: -1}).Do(ctx, &ppd.Request{Kind: ppd.KindBool, Query: q})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Prob != br.Results[i].Prob || resp.Count != br.Results[i].Count {
			t.Errorf("query %d: standalone Do (%v, %v) != batched (%v, %v)",
				i, resp.Prob, resp.Count, br.Results[i].Prob, br.Results[i].Count)
		}
	}
}

// TestServiceTopKBatchMatchesDo: TopKBatch must be byte-identical to the
// corresponding DoBatch of topk requests (the per-request fan-out with
// index-derived seeds underneath is shared).
func TestServiceTopKBatchMatchesDo(t *testing.T) {
	ctx := context.Background()
	reqs := []TopKRequest{
		{Query: doDemoQuery, K: 2, Bound: 1},
		{Query: doUnionQuery, K: 3, Bound: 0},
		{Query: doDemoQuery, K: 2, Bound: 1},
	}
	legacy, err := figure1Service(t, Config{}).TopKBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	dreqs := make([]*ppd.Request, len(reqs))
	for i, r := range reqs {
		dreqs[i] = &ppd.Request{Kind: ppd.KindTopK, Query: r.Query, K: r.K, BoundEdges: r.Bound}
	}
	dr, err := figure1Service(t, Config{}).DoBatch(ctx, dreqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		mustEqual(t, "TopKBatch.top", canonJSON(t, legacy[i].Top), canonJSON(t, dr.Responses[i].Top))
		mustEqual(t, "TopKBatch.diag", canonJSON(t, legacy[i].Diag), canonJSON(t, dr.Responses[i].Diag))
	}
}

// TestDoBatchMixedKinds: a heterogeneous batch (every kind at once)
// answers each request correctly against the same model, and the
// evaluation-backed majority still takes the grouped/dedup path — only the
// topk and aggregate carve-outs fan out.
func TestDoBatchMixedKinds(t *testing.T) {
	svc := figure1Service(t, Config{})
	reqs := []*ppd.Request{
		{Kind: ppd.KindBool, Query: doDemoQuery},
		{Kind: ppd.KindCount, Query: doDemoQuery},
		{Kind: ppd.KindTopK, Query: doDemoQuery, K: 2, BoundEdges: 1},
		{Kind: ppd.KindAggregate, Query: doDemoQuery, AggRel: "V", AggAttr: "age"},
		{Kind: ppd.KindCountDist, Query: doDemoQuery},
	}
	br, err := svc.DoBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if br.Groups == 0 {
		t.Error("the bool/count/countdist cluster of a mixed batch should report grouped accounting")
	}
	if br.Instances < br.Groups {
		t.Errorf("instances %d below groups %d", br.Instances, br.Groups)
	}
	for i, resp := range br.Responses {
		if resp == nil {
			t.Fatalf("request %d: nil response", i)
		}
		if resp.Kind != reqs[i].Kind {
			t.Errorf("request %d: kind %v, want %v", i, resp.Kind, reqs[i].Kind)
		}
	}
	if br.Responses[0].Prob <= 0 || br.Responses[0].Prob > 1 {
		t.Errorf("bool prob out of range: %v", br.Responses[0].Prob)
	}
	if len(br.Responses[2].Top) != 2 || br.Responses[2].Diag == nil {
		t.Errorf("topk response malformed: %+v", br.Responses[2])
	}
	if br.Responses[3].Agg == nil || br.Responses[3].Agg.Sessions == 0 {
		t.Errorf("aggregate response malformed: %+v", br.Responses[3].Agg)
	}
	if br.Responses[4].Dist == nil || br.Responses[4].Dist.N() != 3 {
		t.Errorf("countdist response malformed: %+v", br.Responses[4].Dist)
	}
	// Equal-kind bool answers from the grouped batch must agree with the
	// mixed batch's standalone bool answer.
	if br.Responses[0].Prob != br.Responses[1].Prob {
		t.Errorf("bool vs count prob: %v != %v", br.Responses[0].Prob, br.Responses[1].Prob)
	}
}

// TestDoBatchGroupedCountDist: countdist requests ride the grouped dedup
// path alongside bool requests of the same shape and still carry the full
// padded distribution.
func TestDoBatchGroupedCountDist(t *testing.T) {
	svc := figure1Service(t, Config{})
	br, err := svc.DoBatch(context.Background(), []*ppd.Request{
		{Kind: ppd.KindBool, Query: doDemoQuery},
		{Kind: ppd.KindCountDist, Query: doDemoQuery},
	})
	if err != nil {
		t.Fatal(err)
	}
	if br.Groups == 0 {
		t.Fatal("homogeneous eval batch should use the grouped path")
	}
	if br.Responses[1].Dist == nil {
		t.Fatal("countdist response missing distribution")
	}
	if got, want := br.Responses[1].Dist.Mean(), br.Responses[0].Count; got != want {
		t.Errorf("distribution mean %v != batch count %v", got, want)
	}
	// The second request shares every group with the first: batch
	// accounting attributes all solves to request 0.
	if br.Responses[0].Solves == 0 || br.Responses[1].Solves != 0 {
		t.Errorf("solves attribution: %d/%d", br.Responses[0].Solves, br.Responses[1].Solves)
	}
}

// TestDoRequestOverrides: per-request model, method and seed behave at the
// service layer — method/seed route through the engine clone, model through
// the registry.
func TestDoRequestOverrides(t *testing.T) {
	svc := figure1Service(t, Config{CacheSize: -1})
	ctx := context.Background()
	exact, err := svc.Do(ctx, &ppd.Request{Kind: ppd.KindBool, Query: doDemoQuery})
	if err != nil {
		t.Fatal(err)
	}
	forced, err := svc.Do(ctx, &ppd.Request{Kind: ppd.KindBool, Query: doDemoQuery, Method: ppd.MethodGeneral})
	if err != nil {
		t.Fatal(err)
	}
	if diff := exact.Prob - forced.Prob; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("methods disagree: %v vs %v", exact.Prob, forced.Prob)
	}
	a, err := svc.Do(ctx, &ppd.Request{Kind: ppd.KindBool, Query: doDemoQuery, Method: ppd.MethodRejection, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Do(ctx, &ppd.Request{Kind: ppd.KindBool, Query: doDemoQuery, Method: ppd.MethodRejection, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Prob != b.Prob {
		t.Errorf("seeded sampling request not reproducible: %v vs %v", a.Prob, b.Prob)
	}
	if _, err := svc.Do(ctx, &ppd.Request{Kind: ppd.KindBool, Query: doDemoQuery, Model: "ghost"}); err == nil {
		t.Error("unknown model should fail")
	}
}

// TestDoBatchRequestDedup: identical exact-method requests are answered
// once and share the response (their answers are seed-independent);
// sampling-method requests dedup only on an explicit shared seed, since
// each otherwise samples with its own index-derived seed.
func TestDoBatchRequestDedup(t *testing.T) {
	ctx := context.Background()
	topk := func(seed int64) *ppd.Request {
		return &ppd.Request{Kind: ppd.KindTopK, Query: doDemoQuery, K: 2, BoundEdges: 1, Seed: seed}
	}

	svc := figure1Service(t, Config{CacheSize: -1})
	br, err := svc.DoBatch(ctx, []*ppd.Request{topk(0), topk(0)})
	if err != nil {
		t.Fatal(err)
	}
	if br.Responses[0] != br.Responses[1] {
		t.Error("identical exact-method requests should share one response")
	}
	br, err = svc.DoBatch(ctx, []*ppd.Request{topk(3), topk(3)})
	if err != nil {
		t.Fatal(err)
	}
	if br.Responses[0] != br.Responses[1] {
		t.Error("identical seeded requests should share one response")
	}

	// Sampling method, no explicit seed: each request keeps its own
	// index-derived seed, so no sharing.
	rej := func() *ppd.Request {
		return &ppd.Request{Kind: ppd.KindTopK, Query: doDemoQuery, K: 2, BoundEdges: 1, Method: ppd.MethodRejection}
	}
	br, err = svc.DoBatch(ctx, []*ppd.Request{rej(), rej()})
	if err != nil {
		t.Fatal(err)
	}
	if br.Responses[0] == br.Responses[1] {
		t.Error("unseeded sampling requests must not share a response")
	}
}
