package server

import (
	"context"
	"fmt"

	"probpref/internal/pattern"
	"probpref/internal/pool"
	"probpref/internal/ppd"
	"probpref/internal/registry"
	"probpref/internal/rim"
)

// This file is the service's unified entry point: Do answers one
// ppd.Request (routing by Request.Model through the registry) and DoBatch
// answers many as one unit, deduplicating inference groups across the
// requests of the batch wherever their compiled forms allow it. The legacy
// per-kind methods in compat.go and the HTTP endpoints (legacy /eval,
// /topk and the versioned /v1/query) all funnel through these two.

// Do answers one request: the request is compiled (validated), routed to
// its model — which stays open, immune to catalog deletion, until the
// evaluation returns — and executed by a request-scoped engine sharing the
// service's solve cache under the model's namespace. Request.Method and
// Request.Seed override the service's configured method and seed for this
// request only; Request.Deadline arms a deadline the adaptive planner
// budgets against.
func (s *Service) Do(ctx context.Context, req *ppd.Request) (*ppd.Response, error) {
	cr, err := req.Compile()
	if err != nil {
		return nil, err
	}
	h, err := s.open(cr.Model)
	if err != nil {
		return nil, err
	}
	defer h.Close()
	resp, err := s.doCompiled(ctx, cr, h, s.cfg.Seed)
	if err != nil {
		return nil, err
	}
	s.noteResponse(resp)
	return resp, nil
}

// doCompiled executes one compiled request against an already-open model
// handle. fallbackSeed seeds the samplers when the request carries no seed
// of its own (batch fan-out derives per-request fallbacks).
func (s *Service) doCompiled(ctx context.Context, cr *ppd.CompiledRequest, h *registry.Handle, fallbackSeed int64) (*ppd.Response, error) {
	resp, err := s.engine(fallbackSeed, h).DoCompiled(ctx, cr)
	if err != nil {
		return nil, &evalError{err}
	}
	return resp, nil
}

// noteResponse folds one answered request into the service counters.
func (s *Service) noteResponse(resp *ppd.Response) {
	if resp.Kind == ppd.KindTopK {
		s.topks.Add(1)
	} else {
		s.evals.Add(1)
	}
	s.solves.Add(uint64(resp.Solves))
}

// DoBatchResult reports a DoBatch: one Response per request (in request
// order) plus the batch-level inference-group dedup accounting of the
// grouped evaluation path (all four counters stay zero when the batch ran
// on the per-request fan-out path instead).
type DoBatchResult struct {
	// Responses holds one response per request, in request order.
	Responses []*ppd.Response
	// Groups counts distinct (model, union) inference groups across the
	// whole batch.
	Groups int
	// Instances counts group references before cross-request dedup
	// (Instances - Groups were saved by sharing within the batch).
	Instances int
	// Solved counts groups actually sent to a solver.
	Solved int
	// CacheHits counts groups answered from the shared cache.
	// Solved + CacheHits == Groups.
	CacheHits int
}

// DoBatch answers a batch of requests as one unit.
//
// The batch is partitioned per request, not all-or-nothing: every
// evaluation-backed request (bool, count or countdist) without a
// per-request seed or deadline joins a grouped cluster keyed by its (model,
// effective method) pair, and each cluster takes the grouped path — every
// request of the cluster is grounded, the
// per-session inference groups are deduplicated across the cluster (the
// cross-query generalization of the paper's Section 6.4 grouping), cached
// results come from the shared solve cache, and only the remaining distinct
// groups are solved: through one compiled-plan batched walk for the exact
// methods, or on the bounded worker pool otherwise. For the exact methods
// per-request probabilities are identical to answering each request alone;
// for the sampling methods each group's seed derives from its cluster-wide
// group index, so answers are deterministic per batch+seed but can differ
// from a standalone evaluation. A request's Solves / CacheHits attribute
// each group to the first request of its cluster that needed it.
//
// Every other request — topk or aggregate kinds, and the carve-outs
// carrying their own seed or deadline — fans out
// request-by-request on the worker pool; one seeded request no longer
// forces the groupable majority off the grouped path. Identical fan-out
// requests (equal compiled Keys) are answered once and share the response
// when their method is exact (seed-independent); under a sampling method
// they additionally need an explicit shared seed, since each request
// otherwise samples with its own index-derived seed. Cross-request sharing
// between the two paths still happens through the shared solve cache.
func (s *Service) DoBatch(ctx context.Context, reqs []*ppd.Request) (*DoBatchResult, error) {
	crs := make([]*ppd.CompiledRequest, len(reqs))
	for i, r := range reqs {
		cr, err := r.Compile()
		if err != nil {
			return nil, fmt.Errorf("server: query %d: %w", i+1, err)
		}
		crs[i] = cr
	}
	clusters, fanOut := s.partitionBatch(crs)
	br := &DoBatchResult{Responses: make([]*ppd.Response, len(crs))}
	for _, idx := range clusters {
		if err := s.doBatchGrouped(ctx, crs, idx, br); err != nil {
			return nil, err
		}
	}
	if len(fanOut) > 0 {
		if err := s.doBatchFanOut(ctx, crs, fanOut, br); err != nil {
			return nil, err
		}
	}
	s.batches.Add(1)
	return br, nil
}

// groupEligible reports whether one request may join a grouped cluster:
// evaluation-backed kinds only, and no per-request seed or deadline (the
// grouped path seeds each group from its cluster-wide index and runs under
// the batch context).
func groupEligible(cr *ppd.CompiledRequest) bool {
	switch cr.Kind {
	case ppd.KindBool, ppd.KindCount, ppd.KindCountDist:
	default:
		return false
	}
	return cr.Seed == 0 && cr.Deadline == 0
}

// partitionBatch splits a compiled batch into grouped clusters (eligible
// requests sharing a model and effective method, in request order; a
// singleton cluster still profits from per-session group dedup and cache
// accounting) and the fan-out remainder (ineligible requests, in request
// order). Every request lands in exactly one partition.
func (s *Service) partitionBatch(crs []*ppd.CompiledRequest) (clusters [][]int, fanOut []int) {
	clusterOf := make(map[string]int)
	for ri, cr := range crs {
		if !groupEligible(cr) {
			fanOut = append(fanOut, ri)
			continue
		}
		key := cr.Model + nsSep + s.effMethod(cr).String()
		ci, ok := clusterOf[key]
		if !ok {
			ci = len(clusters)
			clusterOf[key] = ci
			clusters = append(clusters, nil)
		}
		clusters[ci] = append(clusters[ci], ri)
	}
	return clusters, fanOut
}

// effMethod resolves a request's effective solver method: the forced one,
// or the service default when the request leaves it at MethodAuto.
func (s *Service) effMethod(cr *ppd.CompiledRequest) ppd.Method {
	if cr.Method != ppd.MethodAuto {
		return cr.Method
	}
	return s.cfg.Method
}

// seedSensitive reports whether a method's answers depend on the sampler
// seed. Exact methods are deterministic whatever the seed, so identical
// requests can share one answer even when their derived seeds differ.
func seedSensitive(m ppd.Method) bool {
	switch m {
	case ppd.MethodMISAdaptive, ppd.MethodMISLite, ppd.MethodRejection, ppd.MethodAdaptive:
		return true
	}
	return false
}

// doBatchGrouped is the grouped evaluation path of DoBatch, run per
// cluster: ground every request of idx (original request indices, one model
// and effective method), deduplicate the (model, union) inference groups
// across the cluster, resolve cache hits inside the model's namespace, and
// solve the misses — through one compiled-plan batched walk
// (ppd.BatchSolveGroups) for the exact methods, or fanned out to the worker
// pool otherwise. Responses land at their original indices in br and the
// dedup counters accumulate into it.
func (s *Service) doBatchGrouped(ctx context.Context, crs []*ppd.CompiledRequest, idx []int, br *DoBatchResult) error {
	h, err := s.open(crs[idx[0]].Model)
	if err != nil {
		return err
	}
	defer h.Close()
	method := s.effMethod(crs[idx[0]])
	type ref struct {
		sess *ppd.Session
		gi   int
	}
	type batchGroup struct {
		sm    rim.SessionModel
		u     pattern.Union
		key   string
		first int // position in idx of the first request referencing the group
	}
	var (
		groupOf = make(map[string]int)
		groups  []batchGroup
		perQ    = make([][]ref, len(idx))
		// nSessions records each request's total session count (live or
		// not) so countdist responses can pad the structurally-zero tail.
		nSessions = make([]int, len(idx))
	)
	// With the adaptive method an expired deadline degrades remaining groups
	// to sampling instead of aborting the batch: the grounding loop and the
	// pool fan-out run deadline-detached (cancellation still aborts), while
	// each group's solve sees the original ctx for budgeting.
	adaptive := method == ppd.MethodAdaptive
	loopCtx := ctx
	if adaptive {
		var cancel context.CancelFunc
		loopCtx, cancel = ppd.DetachDeadline(ctx)
		defer cancel()
	}
	for qi, ri := range idx {
		cr := crs[ri]
		if err := loopCtx.Err(); err != nil {
			return &evalError{context.Cause(loopCtx)}
		}
		grounders, err := ppd.UnionGrounders(h.DB(), cr.Union)
		if err != nil {
			return &evalError{fmt.Errorf("server: query %d: %w", ri+1, err)}
		}
		nSessions[qi] = grounders[0].Pref().Sessions.Len()
		for _, sess := range grounders[0].Pref().Sessions.All() {
			u, err := ppd.GroundMerged(grounders, sess)
			if err != nil {
				return &evalError{fmt.Errorf("server: query %d: %w", ri+1, err)}
			}
			if len(u) == 0 {
				continue
			}
			key := ppd.GroupKey(method, sess.Model, u)
			gi, ok := groupOf[key]
			if !ok {
				gi = len(groups)
				groupOf[key] = gi
				groups = append(groups, batchGroup{sm: sess.Model, u: u, key: key, first: qi})
			}
			perQ[qi] = append(perQ[qi], ref{sess: sess, gi: gi})
			br.Instances++
		}
	}
	br.Groups += len(groups)

	// Resolve groups from the shared cache (inside the model's namespace),
	// then solve the misses. Sampler seeds derive from the cluster-wide
	// group index (offset by the cluster's first request index, so a batch
	// with one cluster keeps the historical seeds and distinct clusters
	// never share a stream) and answers are deterministic for a fixed
	// Config.Seed regardless of pool scheduling.
	ns := h.Name() + nsSep
	probs := make([]float64, len(groups))
	reports := make([]ppd.SolveReport, len(groups))
	cached := make([]bool, len(groups))
	var pending []int
	for gi := range groups {
		if s.cache != nil {
			if p, ok := s.cache.Get(ns + groups[gi].key); ok {
				probs[gi] = p
				cached[gi] = true
				br.CacheHits++
				continue
			}
		}
		pending = append(pending, gi)
	}
	br.Solved += len(pending)
	seedBase := s.cfg.Seed + int64(idx[0])
	if len(pending) > 1 && ppd.BatchableMethod(method) {
		// Exact compiled-plan methods: solve every pending group through one
		// compile-once / solve-many pass. Plans come from (and fill) the
		// model's plan-cache namespace, groups sharing a union shape fold
		// through one batched layer walk, and results are bit-identical to
		// per-group solves, so this changes only the cost, never the answer.
		eng := s.engine(seedBase, h)
		eng.Method = method
		bgs := make([]ppd.BatchGroup, len(pending))
		for pi, gi := range pending {
			bgs[pi] = ppd.BatchGroup{SM: groups[gi].sm, U: groups[gi].u}
		}
		bprobs, breps, err := eng.BatchSolveGroups(ctx, bgs)
		if err != nil {
			return &evalError{fmt.Errorf("server: query %d: %w", idx[groups[pending[0]].first]+1, err)}
		}
		for pi, gi := range pending {
			probs[gi], reports[gi] = bprobs[pi], breps[pi]
			if s.cache != nil {
				s.cache.Put(ns+groups[gi].key, bprobs[pi])
			}
		}
	} else {
		err = pool.RunCtx(loopCtx, len(pending), s.cfg.Workers, func(pi int) error {
			gi := pending[pi]
			eng := s.engine(seedBase+int64(gi), h)
			eng.Method = method
			eng.Workers = 1 // the pool is the parallelism
			p, rep, err := eng.SolveUnionCtx(ctx, groups[gi].sm, groups[gi].u)
			if err != nil {
				return fmt.Errorf("server: query %d: %w", idx[groups[gi].first]+1, err)
			}
			probs[gi] = p
			reports[gi] = rep
			if s.cache != nil {
				s.cache.Put(ns+groups[gi].key, p)
			}
			return nil
		})
		if err != nil {
			return &evalError{err}
		}
	}

	// Aggregate per request with the engine's own aggregation. Solves and
	// CacheHits attribute each group's cost to the first request that
	// referenced it (batch accounting); the adaptive plan instead reflects
	// each request's own view — every distinct freshly-solved group the
	// request references counts toward its routing totals, matching the
	// propagated half-widths, so shared groups appear in every referencing
	// request's plan (cache hits replay a point answer and contribute no
	// width).
	solves := make([]int, len(idx))
	cacheHits := make([]int, len(idx))
	for gi, g := range groups {
		if cached[gi] {
			cacheHits[g.first]++
		} else {
			solves[g.first]++
		}
	}
	for qi, ri := range idx {
		cr := crs[ri]
		per := make([]ppd.SessionProb, len(perQ[qi]))
		hw := make([]float64, len(perQ[qi]))
		seen := make(map[int]bool)
		for i, r := range perQ[qi] {
			per[i] = ppd.SessionProb{Session: r.sess, Prob: probs[r.gi]}
			if !cached[r.gi] {
				hw[i] = reports[r.gi].HalfWidth
			}
		}
		res := ppd.BoolAggregate(per)
		if adaptive {
			plan := ppd.BatchPlan(per, hw)
			for _, r := range perQ[qi] {
				if !cached[r.gi] && !seen[r.gi] {
					seen[r.gi] = true
					plan.Note(reports[r.gi])
				}
			}
			res.Plan = plan
		}
		res.Solves, res.CacheHits = solves[qi], cacheHits[qi]
		resp := &ppd.Response{
			Kind:       cr.Kind,
			Prob:       res.Prob,
			Count:      res.Count,
			PerSession: res.PerSession,
			Solves:     res.Solves,
			CacheHits:  res.CacheHits,
			Plan:       res.Plan,
		}
		if cr.Kind == ppd.KindCountDist {
			dist, err := ppd.CountDistFromSessions(res.PerSession, nSessions[qi])
			if err != nil {
				return &evalError{fmt.Errorf("server: query %d: %w", ri+1, err)}
			}
			resp.Dist = dist
		}
		br.Responses[ri] = resp
	}
	s.evals.Add(uint64(len(idx)))
	s.solves.Add(uint64(len(pending)))
	return nil
}

// doBatchFanOut is the per-request path of DoBatch: every distinct request
// of idx (original request indices) runs on the worker pool through the
// same engine construction as Do, with per-request sampler seeds derived
// from the original request index (matching the legacy TopKBatch semantics)
// unless the request carries its own seed. Requests with identical compiled
// keys and seeds are answered once and share the response value. Responses
// land at their original indices in br.
func (s *Service) doBatchFanOut(ctx context.Context, crs []*ppd.CompiledRequest, idx []int, br *DoBatchResult) error {
	// Open every distinct model up front so an unknown name fails the batch
	// with its catalog error (404), and so deletions cannot unload a model
	// mid-batch.
	handles := make(map[string]*registry.Handle)
	defer func() {
		for _, h := range handles {
			h.Close()
		}
	}()
	for _, ri := range idx {
		if _, ok := handles[crs[ri].Model]; !ok {
			h, err := s.open(crs[ri].Model)
			if err != nil {
				return err
			}
			handles[crs[ri].Model] = h
		}
	}
	seeds := make([]int64, len(crs))
	firstOf := make(map[string]int)
	dupOf := make([]int, len(crs)) // -1 = unique, else index answered for us
	var unique []int
	for _, ri := range idx {
		cr := crs[ri]
		seeds[ri] = s.cfg.Seed + int64(ri)
		if cr.Seed != 0 {
			seeds[ri] = cr.Seed
		}
		// Exact methods answer independently of the sampler seed, so
		// identical requests share one evaluation even though their derived
		// seeds differ; seed-sensitive methods only dedup on an explicit
		// shared seed (matching the legacy per-index seeding). Consensus
		// requests are always seed-suffixed: even under MethodAuto the
		// engine routes them to sampling when the item count exceeds the
		// exact cap, so their answers may depend on the derived seed.
		key := cr.Key()
		if seedSensitive(s.effMethod(cr)) || cr.Kind == ppd.KindConsensus {
			key = fmt.Sprintf("%s#%d", key, seeds[ri])
		}
		if first, ok := firstOf[key]; ok {
			dupOf[ri] = first
			continue
		}
		firstOf[key] = ri
		dupOf[ri] = -1
		unique = append(unique, ri)
	}
	// As on the grouped path: with the adaptive method an expired deadline
	// degrades per-request groups to sampling instead of aborting the
	// fan-out.
	adaptive := s.cfg.Method == ppd.MethodAdaptive
	for _, ri := range idx {
		if crs[ri].Method == ppd.MethodAdaptive {
			adaptive = true
		}
	}
	loopCtx := ctx
	if adaptive {
		var cancel context.CancelFunc
		loopCtx, cancel = ppd.DetachDeadline(ctx)
		defer cancel()
	}
	err := pool.RunCtx(loopCtx, len(unique), s.cfg.Workers, func(pi int) error {
		ri := unique[pi]
		eng := s.engine(seeds[ri], handles[crs[ri].Model])
		eng.Workers = 1 // the pool is the parallelism
		resp, err := eng.DoCompiled(ctx, crs[ri])
		if err != nil {
			return fmt.Errorf("server: query %d: %w", ri+1, err)
		}
		br.Responses[ri] = resp
		return nil
	})
	if err != nil {
		return &evalError{err}
	}
	for _, ri := range idx {
		if first := dupOf[ri]; first >= 0 {
			br.Responses[ri] = br.Responses[first]
		}
	}
	for _, ri := range idx {
		resp := br.Responses[ri]
		if resp.Kind == ppd.KindTopK {
			s.topks.Add(1)
		} else {
			s.evals.Add(1)
		}
		// Deduplicated aliases share one evaluation; count its solver work
		// once, not per referencing request.
		if dupOf[ri] < 0 {
			s.solves.Add(uint64(resp.Solves))
		}
	}
	return nil
}
