package label

import (
	"math/rand"
	"testing"
	"testing/quick"

	"probpref/internal/rank"
)

func TestVocabIntern(t *testing.T) {
	v := NewVocab()
	a := v.Intern("sex=F")
	b := v.Intern("sex=M")
	if a == b {
		t.Fatal("distinct strings must get distinct ids")
	}
	if again := v.Intern("sex=F"); again != a {
		t.Fatal("interning twice must return the same id")
	}
	if v.Name(a) != "sex=F" {
		t.Fatalf("Name = %q", v.Name(a))
	}
	if _, ok := v.Lookup("missing"); ok {
		t.Fatal("Lookup of missing label should fail")
	}
	if v.Len() != 2 {
		t.Fatalf("Len = %d", v.Len())
	}
}

func TestVocabNameOutOfRange(t *testing.T) {
	v := NewVocab()
	if got := v.Name(Label(42)); got != "label#42" {
		t.Fatalf("Name(42) = %q", got)
	}
}

func TestNewSetDedup(t *testing.T) {
	s := NewSet(3, 1, 3, 2, 1)
	if !s.Equal(Set{1, 2, 3}) {
		t.Fatalf("NewSet = %v", s)
	}
}

func TestSetOps(t *testing.T) {
	s := NewSet(1, 3)
	u := s.Union(NewSet(2, 3))
	if !u.Equal(Set{1, 2, 3}) {
		t.Fatalf("Union = %v", u)
	}
	if !s.Contains(3) || s.Contains(2) {
		t.Fatal("Contains wrong")
	}
	if !NewSet(1).SubsetOf(s) || NewSet(2).SubsetOf(s) {
		t.Fatal("SubsetOf wrong")
	}
	if !Set(nil).SubsetOf(s) {
		t.Fatal("empty set is a subset of everything")
	}
	if s.Key() != "1,3" {
		t.Fatalf("Key = %q", s.Key())
	}
}

// Property: union is commutative, associative, idempotent; subset relation
// agrees with a map-based implementation.
func TestSetUnionProperties(t *testing.T) {
	gen := func(vals []uint8) Set {
		ls := make([]Label, len(vals))
		for i, v := range vals {
			ls[i] = Label(v % 16)
		}
		return NewSet(ls...)
	}
	f := func(a, b, c []uint8) bool {
		x, y, z := gen(a), gen(b), gen(c)
		if !x.Union(y).Equal(y.Union(x)) {
			return false
		}
		if !x.Union(y).Union(z).Equal(x.Union(y.Union(z))) {
			return false
		}
		if !x.Union(x).Equal(x) {
			return false
		}
		return x.SubsetOf(x.Union(y))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetOfMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		mk := func() Set {
			n := rng.Intn(6)
			ls := make([]Label, n)
			for i := range ls {
				ls[i] = Label(rng.Intn(8))
			}
			return NewSet(ls...)
		}
		s, u := mk(), mk()
		naive := true
		for _, l := range s {
			found := false
			for _, x := range u {
				if x == l {
					found = true
				}
			}
			if !found {
				naive = false
			}
		}
		if s.SubsetOf(u) != naive {
			t.Fatalf("SubsetOf(%v, %v) = %v, want %v", s, u, s.SubsetOf(u), naive)
		}
	}
}

func TestLabeling(t *testing.T) {
	lb := NewLabeling()
	lb.Add(0, 1)
	lb.Add(0, 2)
	lb.Add(1, 2)
	if !lb.Has(0, 1) || lb.Has(1, 1) {
		t.Fatal("Has wrong")
	}
	if !lb.HasAll(0, NewSet(1, 2)) {
		t.Fatal("HasAll wrong")
	}
	if lb.HasAll(1, NewSet(1, 2)) {
		t.Fatal("HasAll should fail when a label is missing")
	}
	if !lb.HasAll(1, nil) {
		t.Fatal("empty requirement matches any item")
	}
	items := lb.ItemsWithLabel(2, 3)
	if len(items) != 2 || items[0] != 0 || items[1] != 1 {
		t.Fatalf("ItemsWithLabel = %v", items)
	}
	if got := lb.ItemsWith(NewSet(1, 2), 3); len(got) != 1 || got[0] != 0 {
		t.Fatalf("ItemsWith = %v", got)
	}
}

func TestLabelingAddAll(t *testing.T) {
	lb := NewLabeling()
	lb.AddAll(5, NewSet(4, 2))
	if !lb.Of(rank.Item(5)).Equal(Set{2, 4}) {
		t.Fatalf("Of = %v", lb.Of(5))
	}
}
