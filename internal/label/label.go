// Package label defines labels — values of item attributes — and labeling
// functions that associate each item with a finite set of labels. Patterns
// (package pattern) state preferences among labels; query evaluation derives
// the labeling function from the ordinary relations of a RIM-PPD.
//
// Labels are interned: each distinct label string (conventionally
// "attr=value") maps to a dense Label id through a Vocab, so that hot solver
// loops compare integers rather than strings.
package label

import (
	"fmt"
	"sort"
	"strconv"

	"probpref/internal/rank"
)

// Label is an interned label identifier.
type Label int32

// Vocab interns label strings.
type Vocab struct {
	byName map[string]Label
	names  []string
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab {
	return &Vocab{byName: make(map[string]Label)}
}

// Intern returns the id of name, creating it if necessary.
func (v *Vocab) Intern(name string) Label {
	if id, ok := v.byName[name]; ok {
		return id
	}
	id := Label(len(v.names))
	v.byName[name] = id
	v.names = append(v.names, name)
	return id
}

// Lookup returns the id of name and whether it exists.
func (v *Vocab) Lookup(name string) (Label, bool) {
	id, ok := v.byName[name]
	return id, ok
}

// Name returns the string for a label id.
func (v *Vocab) Name(l Label) string {
	if int(l) < 0 || int(l) >= len(v.names) {
		return fmt.Sprintf("label#%d", int(l))
	}
	return v.names[l]
}

// Len returns the number of interned labels.
func (v *Vocab) Len() int { return len(v.names) }

// Set is a sorted, duplicate-free set of labels.
type Set []Label

// NewSet builds a Set from the given labels.
func NewSet(labels ...Label) Set {
	s := make(Set, len(labels))
	copy(s, labels)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	for i, l := range s {
		if i == 0 || l != s[i-1] {
			out = append(out, l)
		}
	}
	return out
}

// Contains reports whether l is in the set.
func (s Set) Contains(l Label) bool {
	for _, x := range s {
		if x == l {
			return true
		}
		if x > l {
			return false
		}
	}
	return false
}

// SubsetOf reports whether every label of s is in t.
func (s Set) SubsetOf(t Set) bool {
	i := 0
	for _, l := range s {
		for i < len(t) && t[i] < l {
			i++
		}
		if i >= len(t) || t[i] != l {
			return false
		}
	}
	return true
}

// Union returns the union of s and t.
func (s Set) Union(t Set) Set {
	out := make(Set, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Equal reports set equality.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string key for the set.
func (s Set) Key() string {
	b := make([]byte, 0, 8*len(s))
	for i, l := range s {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(l), 10)
	}
	return string(b)
}

// Labeling maps each item to its set of labels (the paper's lambda).
type Labeling struct {
	byItem map[rank.Item]Set
}

// NewLabeling returns an empty labeling function.
func NewLabeling() *Labeling {
	return &Labeling{byItem: make(map[rank.Item]Set)}
}

// Add attaches label l to item it.
func (lb *Labeling) Add(it rank.Item, l Label) {
	lb.byItem[it] = lb.byItem[it].Union(Set{l})
}

// AddAll attaches every label of s to item it.
func (lb *Labeling) AddAll(it rank.Item, s Set) {
	lb.byItem[it] = lb.byItem[it].Union(s)
}

// Of returns the label set of item it (nil when unlabeled).
func (lb *Labeling) Of(it rank.Item) Set { return lb.byItem[it] }

// Has reports whether item it carries label l.
func (lb *Labeling) Has(it rank.Item, l Label) bool { return lb.byItem[it].Contains(l) }

// HasAll reports whether item it carries every label of s. An empty s is
// satisfied by every item.
func (lb *Labeling) HasAll(it rank.Item, s Set) bool { return s.SubsetOf(lb.byItem[it]) }

// ItemsWith returns, in ascending item order, the items carrying every label
// of s among items 0..m-1.
func (lb *Labeling) ItemsWith(s Set, m int) []rank.Item {
	var out []rank.Item
	for i := 0; i < m; i++ {
		if lb.HasAll(rank.Item(i), s) {
			out = append(out, rank.Item(i))
		}
	}
	return out
}

// ItemsWithLabel returns the items carrying label l among items 0..m-1.
func (lb *Labeling) ItemsWithLabel(l Label, m int) []rank.Item {
	return lb.ItemsWith(Set{l}, m)
}
