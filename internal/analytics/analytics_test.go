package analytics

import (
	"math"
	"math/rand"
	"testing"

	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/rank"
	"probpref/internal/rim"
	"probpref/internal/solver"
)

// randomRIM builds a RIM over m items with a random reference ranking and a
// random row-stochastic insertion matrix.
func randomRIM(m int, rng *rand.Rand) *rim.Model {
	sigma := rank.Identity(m)
	rng.Shuffle(m, func(i, j int) { sigma[i], sigma[j] = sigma[j], sigma[i] })
	pi := make([][]float64, m)
	for i := 0; i < m; i++ {
		row := make([]float64, i+1)
		sum := 0.0
		for j := range row {
			row[j] = rng.Float64() + 0.01
			sum += row[j]
		}
		for j := range row {
			row[j] /= sum
		}
		pi[i] = row
	}
	return rim.MustNew(sigma, pi)
}

// brutePositionDist enumerates all rankings to compute the position
// distribution of item x.
func brutePositionDist(mdl *rim.Model, x rank.Item) []float64 {
	q := make([]float64, mdl.M())
	rank.ForEachPermutation(mdl.M(), func(tau rank.Ranking) bool {
		q[tau.Position(x)] += mdl.Prob(tau)
		return true
	})
	return q
}

// brutePairwise enumerates all rankings to compute Pr(a preferred to b).
func brutePairwise(mdl *rim.Model, a, b rank.Item) float64 {
	p := 0.0
	rank.ForEachPermutation(mdl.M(), func(tau rank.Ranking) bool {
		if tau.Prefers(a, b) {
			p += mdl.Prob(tau)
		}
		return true
	})
	return p
}

func TestPositionDistributionMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		m := 3 + rng.Intn(4) // 3..6
		mdl := randomRIM(m, rng)
		for x := 0; x < m; x++ {
			got, err := PositionDistribution(mdl, rank.Item(x))
			if err != nil {
				t.Fatal(err)
			}
			want := brutePositionDist(mdl, rank.Item(x))
			for p := range want {
				if math.Abs(got[p]-want[p]) > 1e-10 {
					t.Fatalf("trial %d item %d pos %d: got %v, want %v", trial, x, p, got[p], want[p])
				}
			}
		}
	}
}

func TestPositionDistributionUnknownItem(t *testing.T) {
	mdl := rim.MustMallows(rank.Identity(4), 0.5).Model()
	if _, err := PositionDistribution(mdl, 9); err == nil {
		t.Fatal("want error for unknown item")
	}
	if _, err := ExpectedRank(mdl, -1); err == nil {
		t.Fatal("want error for negative item")
	}
	if _, err := TopKProb(mdl, 42, 2); err == nil {
		t.Fatal("want error for unknown item in TopKProb")
	}
}

func TestRankMarginalsDoublyStochastic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mdl := randomRIM(7, rng)
	rm := RankMarginals(mdl)
	m := mdl.M()
	for x := 0; x < m; x++ {
		row := 0.0
		for p := 0; p < m; p++ {
			row += rm[x][p]
			if rm[x][p] < -1e-12 || rm[x][p] > 1+1e-12 {
				t.Fatalf("marginal out of range: rm[%d][%d] = %v", x, p, rm[x][p])
			}
		}
		if math.Abs(row-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", x, row)
		}
	}
	for p := 0; p < m; p++ {
		col := 0.0
		for x := 0; x < m; x++ {
			col += rm[x][p]
		}
		if math.Abs(col-1) > 1e-9 {
			t.Fatalf("column %d sums to %v", p, col)
		}
	}
}

func TestPairwiseProbMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		m := 3 + rng.Intn(4)
		mdl := randomRIM(m, rng)
		for a := 0; a < m; a++ {
			for b := 0; b < m; b++ {
				if a == b {
					continue
				}
				got, err := PairwiseProb(mdl, rank.Item(a), rank.Item(b))
				if err != nil {
					t.Fatal(err)
				}
				want := brutePairwise(mdl, rank.Item(a), rank.Item(b))
				if math.Abs(got-want) > 1e-10 {
					t.Fatalf("trial %d Pr(%d>%d): got %v, want %v", trial, a, b, got, want)
				}
			}
		}
	}
}

func TestPairwiseProbErrors(t *testing.T) {
	mdl := rim.MustMallows(rank.Identity(3), 0.4).Model()
	if _, err := PairwiseProb(mdl, 1, 1); err == nil {
		t.Fatal("want error for a == b")
	}
	if _, err := PairwiseProb(mdl, 0, 7); err == nil {
		t.Fatal("want error for unknown item")
	}
}

func TestPairwiseMatrixAgreesWithPairwiseProb(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	mdl := randomRIM(8, rng)
	pm := PairwiseMatrix(mdl)
	for a := 0; a < 8; a++ {
		if pm[a][a] != 0 {
			t.Fatalf("diagonal pm[%d][%d] = %v, want 0", a, a, pm[a][a])
		}
		for b := 0; b < 8; b++ {
			if a == b {
				continue
			}
			want, err := PairwiseProb(mdl, rank.Item(a), rank.Item(b))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(pm[a][b]-want) > 1e-10 {
				t.Fatalf("pm[%d][%d] = %v, PairwiseProb %v", a, b, pm[a][b], want)
			}
			if math.Abs(pm[a][b]+pm[b][a]-1) > 1e-10 {
				t.Fatalf("pm[%d][%d] + pm[%d][%d] = %v, want 1", a, b, b, a, pm[a][b]+pm[b][a])
			}
		}
	}
}

// PairwiseProb must agree with the paper's two-label solver when labels are
// singletons: Pr(a > b) is the probability of the pattern {la > lb} with
// lambda(a) = {la}, lambda(b) = {lb}.
func TestPairwiseProbMatchesTwoLabelSolver(t *testing.T) {
	ml := rim.MustMallows(rank.Ranking{3, 1, 4, 0, 2, 5}, 0.45)
	mdl := ml.Model()
	for a := 0; a < 6; a++ {
		for b := 0; b < 6; b++ {
			if a == b {
				continue
			}
			lab := label.NewLabeling()
			lab.Add(rank.Item(a), 0)
			lab.Add(rank.Item(b), 1)
			u := pattern.Union{pattern.TwoLabel(label.NewSet(0), label.NewSet(1))}
			want, err := solver.TwoLabel(mdl, lab, u, solver.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := PairwiseProb(mdl, rank.Item(a), rank.Item(b))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-10 {
				t.Fatalf("Pr(%d>%d): analytics %v, two-label solver %v", a, b, got, want)
			}
		}
	}
}

func TestUniformMallowsPairwiseIsHalf(t *testing.T) {
	mdl := rim.MustMallows(rank.Identity(5), 1).Model()
	pm := PairwiseMatrix(mdl)
	for a := 0; a < 5; a++ {
		for b := 0; b < 5; b++ {
			if a == b {
				continue
			}
			if math.Abs(pm[a][b]-0.5) > 1e-10 {
				t.Fatalf("uniform model: pm[%d][%d] = %v, want 0.5", a, b, pm[a][b])
			}
		}
	}
}

func TestDegenerateMallowsPairwiseFollowsCenter(t *testing.T) {
	sigma := rank.Ranking{2, 0, 1}
	mdl := rim.MustMallows(sigma, 0).Model()
	pm := PairwiseMatrix(mdl)
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if p := pm[sigma[i]][sigma[j]]; math.Abs(p-1) > 1e-12 {
				t.Fatalf("phi=0: Pr(%d>%d) = %v, want 1", sigma[i], sigma[j], p)
			}
		}
	}
}

func TestExpectedRankAndBordaConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mdl := randomRIM(6, rng)
	pm := PairwiseMatrix(mdl)
	borda := BordaScores(pm)
	sum := 0.0
	for x := 0; x < 6; x++ {
		er, err := ExpectedRank(mdl, rank.Item(x))
		if err != nil {
			t.Fatal(err)
		}
		// Expected rank = number of opponents expected above = sum of losing
		// probabilities = (m-1) - Borda score.
		if math.Abs(er-(5-borda[x])) > 1e-9 {
			t.Fatalf("item %d: expected rank %v, 5 - borda %v", x, er, 5-borda[x])
		}
		sum += borda[x]
	}
	if math.Abs(sum-15) > 1e-9 { // m(m-1)/2 = 15
		t.Fatalf("Borda scores sum to %v, want 15", sum)
	}
}

func TestTopKProb(t *testing.T) {
	mdl := rim.MustMallows(rank.Identity(4), 0.3).Model()
	for x := 0; x < 4; x++ {
		p0, err := TopKProb(mdl, rank.Item(x), 0)
		if err != nil || p0 != 0 {
			t.Fatalf("top-0 prob = %v err %v, want 0", p0, err)
		}
		pm, err := TopKProb(mdl, rank.Item(x), 4)
		if err != nil || math.Abs(pm-1) > 1e-9 {
			t.Fatalf("top-m prob = %v err %v, want 1", pm, err)
		}
		pover, err := TopKProb(mdl, rank.Item(x), 99)
		if err != nil || math.Abs(pover-1) > 1e-9 {
			t.Fatalf("top-99 prob = %v err %v, want 1", pover, err)
		}
	}
	// Center's first item is the most likely top item under small phi.
	p0, _ := TopKProb(mdl, 0, 1)
	p3, _ := TopKProb(mdl, 3, 1)
	if p0 <= p3 {
		t.Fatalf("top-1 prob of center head %v <= tail %v", p0, p3)
	}
}

func TestExpectedDistanceToReference(t *testing.T) {
	// Closed form vs enumeration on a random RIM.
	rng := rand.New(rand.NewSource(6))
	mdl := randomRIM(5, rng)
	want := 0.0
	rank.ForEachPermutation(5, func(tau rank.Ranking) bool {
		want += float64(rank.KendallTau(mdl.Sigma(), tau)) * mdl.Prob(tau)
		return true
	})
	got := ExpectedDistanceToReference(mdl)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("expected distance %v, enumeration %v", got, want)
	}
}

func TestExpectedDistanceUniformMallows(t *testing.T) {
	// phi = 1: E[dist] = m(m-1)/4 (uniform over rankings).
	m := 6
	mdl := rim.MustMallows(rank.Identity(m), 1).Model()
	want := float64(m*(m-1)) / 4
	if got := ExpectedDistanceToReference(mdl); math.Abs(got-want) > 1e-9 {
		t.Fatalf("uniform E[dist] = %v, want %v", got, want)
	}
}

func TestExpectedKendall(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mdl := randomRIM(5, rng)
	rho := rank.Ranking{4, 2, 0, 3, 1}
	want := 0.0
	rank.ForEachPermutation(5, func(tau rank.Ranking) bool {
		want += float64(rank.KendallTau(rho, tau)) * mdl.Prob(tau)
		return true
	})
	got, err := ExpectedKendall(mdl, rho)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("ExpectedKendall %v, enumeration %v", got, want)
	}
	// Against the reference itself it must agree with the closed form.
	gotRef, err := ExpectedKendall(mdl, mdl.Sigma())
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(gotRef - ExpectedDistanceToReference(mdl)); diff > 1e-9 {
		t.Fatalf("ExpectedKendall(sigma) differs from closed form by %v", diff)
	}
	if _, err := ExpectedKendall(mdl, rank.Ranking{0, 1}); err == nil {
		t.Fatal("want error for wrong-length rho")
	}
}

func TestExpectedFootruleAndSpearman(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	mdl := randomRIM(5, rng)
	rho := rank.Ranking{3, 1, 4, 0, 2}
	var wantF, wantS float64
	rank.ForEachPermutation(5, func(tau rank.Ranking) bool {
		p := mdl.Prob(tau)
		for _, x := range tau {
			d := tau.Position(x) - rho.Position(x)
			if d < 0 {
				wantF -= float64(d) * p
			} else {
				wantF += float64(d) * p
			}
			wantS += float64(d*d) * p
		}
		return true
	})
	gotF, err := ExpectedFootrule(mdl, rho)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotF-wantF) > 1e-9 {
		t.Fatalf("ExpectedFootrule %v, enumeration %v", gotF, wantF)
	}
	gotS, err := ExpectedSpearman(mdl, rho)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotS-wantS) > 1e-9 {
		t.Fatalf("ExpectedSpearman %v, enumeration %v", gotS, wantS)
	}
	// Diaconis-Graham: Kendall <= Footrule <= 2*Kendall, preserved in
	// expectation.
	ek, err := ExpectedKendall(mdl, rho)
	if err != nil {
		t.Fatal(err)
	}
	if gotF < ek-1e-9 || gotF > 2*ek+1e-9 {
		t.Fatalf("Diaconis-Graham violated in expectation: K=%v F=%v", ek, gotF)
	}
	// Degenerate model: distance to its own center is zero.
	point := rim.MustMallows(rho, 0).Model()
	if f, _ := ExpectedFootrule(point, rho); f != 0 {
		t.Fatalf("point mass footrule to center = %v", f)
	}
	if _, err := ExpectedFootrule(mdl, rank.Ranking{0, 1}); err == nil {
		t.Fatal("want error for wrong-length rho (footrule)")
	}
	if _, err := ExpectedSpearman(mdl, rank.Ranking{0, 0, 1, 2, 3}); err == nil {
		t.Fatal("want error for non-permutation rho (spearman)")
	}
}

func TestCondorcetWinner(t *testing.T) {
	// Small phi: the center's head item beats everyone.
	sigma := rank.Ranking{2, 0, 1}
	pm := PairwiseMatrix(rim.MustMallows(sigma, 0.2).Model())
	w, ok := CondorcetWinner(pm)
	if !ok || w != 2 {
		t.Fatalf("Condorcet winner = %v ok=%v, want item 2", w, ok)
	}
	// Uniform model: every pairwise is exactly 1/2, no strict winner.
	pmU := PairwiseMatrix(rim.MustMallows(sigma, 1).Model())
	if _, ok := CondorcetWinner(pmU); ok {
		t.Fatal("uniform model must not have a strict Condorcet winner")
	}
}

func TestCopelandScores(t *testing.T) {
	pm := PairwiseMatrix(rim.MustMallows(rank.Ranking{0, 1, 2, 3}, 0.3).Model())
	cs := CopelandScores(pm)
	// Under a single Mallows model the Copeland order follows the center.
	for i := 0; i < 3; i++ {
		if cs[i] <= cs[i+1] {
			t.Fatalf("Copeland scores not decreasing along the center: %v", cs)
		}
	}
	// Uniform: every pairwise tie scores 1/2 per opponent.
	csU := CopelandScores(PairwiseMatrix(rim.MustMallows(rank.Identity(4), 1).Model()))
	for i, s := range csU {
		if math.Abs(s-1.5) > 1e-12 {
			t.Fatalf("uniform Copeland score %d = %v, want 1.5", i, s)
		}
	}
}

func TestMixturePairwiseMatrix(t *testing.T) {
	a := rim.MustMallows(rank.Ranking{0, 1, 2}, 0.1)
	b := rim.MustMallows(rank.Ranking{2, 1, 0}, 0.1)
	mx, err := rim.NewMixture([]*rim.Mallows{a, b}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	pm := MixturePairwiseMatrix(mx)
	// Symmetric mixture of opposite centers: every pairwise is 1/2.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			if math.Abs(pm[i][j]-0.5) > 1e-10 {
				t.Fatalf("pm[%d][%d] = %v, want 0.5", i, j, pm[i][j])
			}
		}
	}
	// And the mixture pairwise must match enumeration over the mixture law.
	want := 0.0
	rank.ForEachPermutation(3, func(tau rank.Ranking) bool {
		if tau.Prefers(0, 2) {
			want += mx.Prob(tau)
		}
		return true
	})
	if math.Abs(pm[0][2]-want) > 1e-10 {
		t.Fatalf("mixture Pr(0>2) = %v, enumeration %v", pm[0][2], want)
	}
}

func TestMixtureRankMarginals(t *testing.T) {
	a := rim.MustMallows(rank.Ranking{0, 1, 2}, 0)
	b := rim.MustMallows(rank.Ranking{2, 1, 0}, 0)
	mx, err := rim.NewMixture([]*rim.Mallows{a, b}, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	rm := MixtureRankMarginals(mx)
	// Item 0 is at position 0 with probability 0.25 (component a) and at
	// position 2 with probability 0.75.
	if math.Abs(rm[0][0]-0.25) > 1e-12 || math.Abs(rm[0][2]-0.75) > 1e-12 {
		t.Fatalf("rm[0] = %v, want [0.25 0 0.75]", rm[0])
	}
	if math.Abs(rm[1][1]-1) > 1e-12 {
		t.Fatalf("rm[1][1] = %v, want 1", rm[1][1])
	}
}
