// Package analytics provides exact marginal analytics over Repeated
// Insertion Models: position (rank) distributions of single items, pairwise
// preference probabilities, expected ranks and Kendall tau distances, and
// the social-choice summaries built on them (Condorcet winner, Copeland and
// Borda scores).
//
// These are the "preference analysis" primitives the paper's introduction
// motivates (who is ahead, where is the consensus), computed in polynomial
// time directly from the RIM insertion algebra rather than through pattern
// solvers:
//
//   - the position of one item after every insertion step follows an O(m^2)
//     dynamic program — inserting a later item at or before the tracked
//     position shifts it down by one;
//   - the relative order of two items is decided exactly once, when the
//     later of the two (in reference order) is inserted, so a pairwise
//     marginal needs only the earlier item's position distribution at that
//     step.
//
// All probabilities are exact (no sampling). Positions are 0-based
// throughout, consistent with package rank; position 0 is the most
// preferred.
package analytics

import (
	"fmt"

	"probpref/internal/rank"
	"probpref/internal/rim"
)

// positionDist returns the distribution of the position of item sigma[ix]
// after insertion step upto (0-based, upto >= ix): a slice q of length
// upto+1 with q[p] = Pr(position = p among the first upto+1 items).
func positionDist(mdl *rim.Model, ix, upto int) []float64 {
	q := make([]float64, ix+1, upto+1)
	for j := 0; j <= ix; j++ {
		q[j] = mdl.Pi(ix, j)
	}
	for i := ix + 1; i <= upto; i++ {
		q = advancePosition(mdl, q, i)
	}
	return q
}

// advancePosition pushes a position distribution through insertion step i:
// the new item lands at j <= p with probability head(p), shifting the
// tracked item from p to p+1, and after it otherwise. len(q) = i on entry,
// i+1 on return.
func advancePosition(mdl *rim.Model, q []float64, i int) []float64 {
	head := 0.0 // sum_{j <= p} Pi(i, j), built incrementally
	next := make([]float64, i+1)
	for p := 0; p < i; p++ {
		head += mdl.Pi(i, p)
		next[p] += q[p] * (1 - head)
		next[p+1] += q[p] * head
	}
	return next
}

// PositionDistribution returns the exact distribution of the final position
// of item x: a slice q of length m with q[p] = Pr(x at position p). O(m^2).
func PositionDistribution(mdl *rim.Model, x rank.Item) ([]float64, error) {
	ix := mdl.Sigma().Position(x)
	if ix < 0 {
		return nil, fmt.Errorf("analytics: item %d not in the model's universe", int(x))
	}
	return positionDist(mdl, ix, mdl.M()-1), nil
}

// RankMarginals returns the m-by-m matrix of rank marginals:
// out[x][p] = Pr(item x at position p). Every row and every column sums to
// 1 (the matrix is doubly stochastic). O(m^3).
func RankMarginals(mdl *rim.Model) [][]float64 {
	m := mdl.M()
	out := make([][]float64, m)
	for _, x := range mdl.Sigma() {
		q, _ := PositionDistribution(mdl, x)
		out[x] = q
	}
	return out
}

// TopKProb returns Pr(item x is ranked among the top k positions). O(m^2).
func TopKProb(mdl *rim.Model, x rank.Item, k int) (float64, error) {
	q, err := PositionDistribution(mdl, x)
	if err != nil {
		return 0, err
	}
	if k > len(q) {
		k = len(q)
	}
	p := 0.0
	for i := 0; i < k; i++ {
		p += q[i]
	}
	return p, nil
}

// ExpectedRank returns the expected (0-based) position of item x. O(m^2).
func ExpectedRank(mdl *rim.Model, x rank.Item) (float64, error) {
	q, err := PositionDistribution(mdl, x)
	if err != nil {
		return 0, err
	}
	e := 0.0
	for p, w := range q {
		e += float64(p) * w
	}
	return e, nil
}

// PairwiseProb returns Pr(a preferred to b) under the model. The relative
// order of a and b is decided when the later of the two (in reference
// order) is inserted, so the computation needs only the earlier item's
// position distribution at that step. O(m^2).
func PairwiseProb(mdl *rim.Model, a, b rank.Item) (float64, error) {
	if a == b {
		return 0, fmt.Errorf("analytics: pairwise probability of an item against itself")
	}
	ia, ib := mdl.Sigma().Position(a), mdl.Sigma().Position(b)
	if ia < 0 || ib < 0 {
		return 0, fmt.Errorf("analytics: items %d, %d not both in the model's universe", int(a), int(b))
	}
	if ia > ib {
		p, err := PairwiseProb(mdl, b, a)
		return 1 - p, err
	}
	q := positionDist(mdl, ia, ib-1)
	return laterAfter(mdl, q, ib), nil
}

// laterAfter returns the probability that the item inserted at step i lands
// strictly after the tracked item, given the tracked item's position
// distribution q after step i-1.
func laterAfter(mdl *rim.Model, q []float64, i int) float64 {
	// Pr(insert at j > p) for each tracked position p.
	head := 0.0
	p := 0.0
	for pos, w := range q {
		head += mdl.Pi(i, pos)
		p += w * (1 - head)
	}
	return p
}

// PairwiseMatrix returns the m-by-m matrix with out[a][b] = Pr(a preferred
// to b) and zero diagonal. The matrix satisfies
// out[a][b] + out[b][a] = 1 for a != b. O(m^3): one position DP per
// reference index, with a pairwise readout at every later step.
func PairwiseMatrix(mdl *rim.Model) [][]float64 {
	m := mdl.M()
	sigma := mdl.Sigma()
	out := make([][]float64, m)
	for i := range out {
		out[i] = make([]float64, m)
	}
	for ia := 0; ia < m-1; ia++ {
		a := sigma[ia]
		q := make([]float64, ia+1)
		for j := 0; j <= ia; j++ {
			q[j] = mdl.Pi(ia, j)
		}
		for ib := ia + 1; ib < m; ib++ {
			b := sigma[ib]
			p := laterAfter(mdl, q, ib)
			out[a][b] = p
			out[b][a] = 1 - p
			q = advancePosition(mdl, q, ib)
		}
	}
	return out
}

// ExpectedDistanceToReference returns E[dist(sigma, tau)], the expected
// Kendall tau distance of a model draw to its own reference ranking. It is
// the sum over insertion steps of the expected insertion offset:
// sum_i sum_j (i-j) Pi(i, j). O(m^2).
func ExpectedDistanceToReference(mdl *rim.Model) float64 {
	e := 0.0
	for i := 1; i < mdl.M(); i++ {
		for j := 0; j <= i; j++ {
			e += float64(i-j) * mdl.Pi(i, j)
		}
	}
	return e
}

// ExpectedKendall returns E[dist(rho, tau)] for an arbitrary fixed ranking
// rho: the expected number of item pairs on which a model draw disagrees
// with rho. O(m^3) through the pairwise matrix.
func ExpectedKendall(mdl *rim.Model, rho rank.Ranking) (float64, error) {
	if len(rho) != mdl.M() || !rho.IsPermutation() {
		return 0, fmt.Errorf("analytics: rho %v is not a permutation of the model's universe", rho)
	}
	pm := PairwiseMatrix(mdl)
	e := 0.0
	for i := 0; i < len(rho); i++ {
		for j := i + 1; j < len(rho); j++ {
			// rho prefers rho[i] to rho[j]; disagreement has probability
			// Pr(rho[j] preferred to rho[i]).
			e += pm[rho[j]][rho[i]]
		}
	}
	return e, nil
}

// tieTol absorbs floating-point noise around exact pairwise ties: a
// probability within tieTol of 1/2 counts as a tie for the social-choice
// summaries.
const tieTol = 1e-9

// ExpectedFootrule returns E[F(rho, tau)] for a fixed ranking rho, where F
// is the Spearman footrule distance sum_x |pos_tau(x) - pos_rho(x)|.
// O(m^2) through per-item position distributions.
func ExpectedFootrule(mdl *rim.Model, rho rank.Ranking) (float64, error) {
	if len(rho) != mdl.M() || !rho.IsPermutation() {
		return 0, fmt.Errorf("analytics: rho %v is not a permutation of the model's universe", rho)
	}
	e := 0.0
	for _, x := range mdl.Sigma() {
		q, err := PositionDistribution(mdl, x)
		if err != nil {
			return 0, err
		}
		r := rho.Position(x)
		for p, w := range q {
			d := p - r
			if d < 0 {
				d = -d
			}
			e += float64(d) * w
		}
	}
	return e, nil
}

// ExpectedSpearman returns E[S(rho, tau)] for a fixed ranking rho, where S
// is the Spearman distance sum_x (pos_tau(x) - pos_rho(x))^2. O(m^2).
func ExpectedSpearman(mdl *rim.Model, rho rank.Ranking) (float64, error) {
	if len(rho) != mdl.M() || !rho.IsPermutation() {
		return 0, fmt.Errorf("analytics: rho %v is not a permutation of the model's universe", rho)
	}
	e := 0.0
	for _, x := range mdl.Sigma() {
		q, err := PositionDistribution(mdl, x)
		if err != nil {
			return 0, err
		}
		r := rho.Position(x)
		for p, w := range q {
			d := float64(p - r)
			e += d * d * w
		}
	}
	return e, nil
}

// CondorcetWinner returns the item that beats every other item with
// pairwise probability strictly above 1/2 (beyond floating-point noise), if
// one exists. The input is a pairwise matrix as produced by PairwiseMatrix.
func CondorcetWinner(pairwise [][]float64) (rank.Item, bool) {
	for a := range pairwise {
		wins := true
		for b := range pairwise {
			if a == b {
				continue
			}
			if pairwise[a][b] <= 0.5+tieTol {
				wins = false
				break
			}
		}
		if wins {
			return rank.Item(a), true
		}
	}
	return 0, false
}

// CopelandScores returns, per item, the number of opponents it beats with
// pairwise probability above 1/2, counting ties (probabilities within
// floating-point noise of 1/2) as half a win — the standard Copeland 1/2
// convention.
func CopelandScores(pairwise [][]float64) []float64 {
	out := make([]float64, len(pairwise))
	for a := range pairwise {
		for b := range pairwise {
			if a == b {
				continue
			}
			switch {
			case pairwise[a][b] > 0.5+tieTol:
				out[a]++
			case pairwise[a][b] >= 0.5-tieTol:
				out[a] += 0.5
			}
		}
	}
	return out
}

// BordaScores returns, per item, its expected Borda score: the expected
// number of items ranked below it, sum_b Pr(a preferred to b). An item's
// score equals (m-1) minus its expected rank, and the scores sum to
// m(m-1)/2 exactly.
func BordaScores(pairwise [][]float64) []float64 {
	out := make([]float64, len(pairwise))
	for a := range pairwise {
		for b := range pairwise {
			if a != b {
				out[a] += pairwise[a][b]
			}
		}
	}
	return out
}

// MixturePairwiseMatrix returns the pairwise matrix of a Mallows mixture:
// the weight-averaged pairwise matrices of the components.
func MixturePairwiseMatrix(mx *rim.Mixture) [][]float64 {
	m := mx.M()
	out := make([][]float64, m)
	for i := range out {
		out[i] = make([]float64, m)
	}
	for k, comp := range mx.Components {
		pm := PairwiseMatrix(comp.Model())
		w := mx.Weights[k]
		for a := 0; a < m; a++ {
			for b := 0; b < m; b++ {
				out[a][b] += w * pm[a][b]
			}
		}
	}
	return out
}

// MixtureRankMarginals returns the rank-marginal matrix of a Mallows
// mixture: the weight-averaged marginals of the components.
func MixtureRankMarginals(mx *rim.Mixture) [][]float64 {
	m := mx.M()
	out := make([][]float64, m)
	for i := range out {
		out[i] = make([]float64, m)
	}
	for k, comp := range mx.Components {
		rm := RankMarginals(comp.Model())
		w := mx.Weights[k]
		for a := 0; a < m; a++ {
			for p := 0; p < m; p++ {
				out[a][p] += w * rm[a][p]
			}
		}
	}
	return out
}
