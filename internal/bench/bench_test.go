package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
	"time"
)

// TestRunSmoke runs the whole registry at a tiny measurement budget: every
// case must produce a positive ns/op under a unique name and the report
// must round-trip through its JSON encoding.
func TestRunSmoke(t *testing.T) {
	rep, err := Run(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) == 0 {
		t.Fatal("no results")
	}
	seen := make(map[string]bool)
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 || r.N <= 0 {
			t.Fatalf("degenerate measurement %+v", r)
		}
		if seen[r.Name] {
			t.Fatalf("duplicate benchmark name %q", r.Name)
		}
		seen[r.Name] = true
	}
	for _, want := range []string{"solver/twolabel", "solver/allocs", "service/parallel-batch",
		"planner/estimate-cost", "planner/eval-adaptive-sampled"} {
		if !seen[want] {
			t.Fatalf("registry missing %q", want)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(back.Results) != len(rep.Results) {
		t.Fatalf("round-trip lost results: %d != %d", len(back.Results), len(rep.Results))
	}
}

// Compare must flag only gated cases that regressed beyond the threshold,
// on either time or allocations, and tolerate cases present on one side.
func TestCompare(t *testing.T) {
	old := &Report{Results: []Result{
		{Name: "solver/twolabel", NsPerOp: 1000, AllocsPerOp: 30},
		{Name: "do/compile", NsPerOp: 100, AllocsPerOp: 5},
		{Name: "sampling/rejection-ci-512", NsPerOp: 1000},
		{Name: "solver/gone", NsPerOp: 50},
	}}
	new := &Report{Results: []Result{
		{Name: "solver/twolabel", NsPerOp: 1300, AllocsPerOp: 30},  // +30% time: fails
		{Name: "do/compile", NsPerOp: 101, AllocsPerOp: 100},       // alloc blow-up: fails
		{Name: "sampling/rejection-ci-512", NsPerOp: 9000},         // not gated
		{Name: "solver/new-case", NsPerOp: 1, AllocsPerOp: 100000}, // no old side
	}}
	fails := Compare(old, new, []string{"solver/*", "do/*"}, 0.25)
	if len(fails) != 2 {
		t.Fatalf("want 2 regressions, got %d: %v", len(fails), fails)
	}
	if ok := Compare(old, old, []string{"solver/*", "do/*"}, 0.25); len(ok) != 0 {
		t.Fatalf("self-compare must pass, got %v", ok)
	}
	// Old reports from before allocation recording (every case 0 allocs/op)
	// must not produce spurious allocation regressions — only the time gate
	// applies.
	legacy := &Report{Results: []Result{
		{Name: "solver/twolabel", NsPerOp: 1300},
		{Name: "do/compile", NsPerOp: 101},
	}}
	if fails := Compare(legacy, new, []string{"solver/*", "do/*"}, 0.25); len(fails) != 0 {
		t.Fatalf("legacy old report must not trigger alloc gate, got %v", fails)
	}
}

// ReadReport round-trips what WriteJSON archives.
func TestReadReport(t *testing.T) {
	rep := &Report{GoVersion: "go-test", Results: []Result{{Name: "x", N: 1, NsPerOp: 2, AllocsPerOp: 3}}}
	p := t.TempDir() + "/r.json"
	f, err := os.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, err := ReadReport(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 1 || back.Results[0] != rep.Results[0] || back.GoVersion != "go-test" {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	if _, err := ReadReport(t.TempDir() + "/missing.json"); err == nil {
		t.Fatal("missing file must error")
	}
}
