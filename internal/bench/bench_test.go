package bench

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestRunSmoke runs the whole registry at a tiny measurement budget: every
// case must produce a positive ns/op under a unique name and the report
// must round-trip through its JSON encoding.
func TestRunSmoke(t *testing.T) {
	rep, err := Run(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) == 0 {
		t.Fatal("no results")
	}
	seen := make(map[string]bool)
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 || r.N <= 0 {
			t.Fatalf("degenerate measurement %+v", r)
		}
		if seen[r.Name] {
			t.Fatalf("duplicate benchmark name %q", r.Name)
		}
		seen[r.Name] = true
	}
	for _, want := range []string{"solver/twolabel", "planner/estimate-cost", "planner/eval-adaptive-sampled"} {
		if !seen[want] {
			t.Fatalf("registry missing %q", want)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(back.Results) != len(rep.Results) {
		t.Fatalf("round-trip lost results: %d != %d", len(back.Results), len(rep.Results))
	}
}
