// Package bench is the benchmark regression harness: a fixed set of named
// micro-benchmarks over the solver, sampling, planner, consensus and
// service hot paths, runnable outside `go test` so cmd/experiments can emit
// a machine-readable report (BENCH_PR9.json; earlier PRs archived
// BENCH_PR2.json, BENCH_PR4.json, BENCH_PR5.json and BENCH_PR6.json with
// the same format) for CI to archive and compare across PRs. The do/* cases
// measure the unified request API against the legacy entry points it wraps,
// so any regression from the Do indirection shows up as a ratio drift
// between the paired cases; the solver/* cases gate the packed-state DP
// core — the solver/batched-* pairs additionally gate the compile-once /
// solve-many layer, whose acceptance ratio is loop/batched — the
// consensus/* cases gate the rank-aggregation serving path (exact
// enumeration fold, sampled fold, top-k bands), and every measurement also
// reports allocations per op so steady-state allocation regressions (a
// recycled arena that stops being recycled) fail the compare step like
// time regressions do.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path"
	"runtime"
	"time"

	"probpref/internal/consensus"
	"probpref/internal/dataset"
	"probpref/internal/ppd"
	"probpref/internal/rank"
	"probpref/internal/rim"
	"probpref/internal/sampling"
	"probpref/internal/server"
	"probpref/internal/solver"
)

// Result is one benchmark measurement.
type Result struct {
	// Name identifies the benchmark (stable across PRs; comparisons key on
	// it).
	Name string `json:"name"`
	// N is the number of iterations timed.
	N int `json:"n"`
	// NsPerOp is the measured nanoseconds per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is the measured heap allocations per iteration (averaged
	// over the timed batch; single-threaded harness, so the runtime counter
	// is exact up to background GC noise).
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Report is the benchmark report file format (BENCH_PR6.json).
type Report struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	BenchTime string   `json:"bench_time"`
	Results   []Result `json:"results"`
}

// Case is one registered micro-benchmark: Op runs the unit of work once
// (iteration i lets samplers vary their stream without reseeding cost).
type Case struct {
	Name string
	Op   func(i int) error
}

// Cases builds the benchmark registry. Fixtures are deterministic (seed 1),
// so measurements compare the same work across runs.
func Cases() ([]Case, error) {
	twoLabel := dataset.BenchmarkD(1)[0]                // m=20, two-label union
	bipartite := dataset.BenchmarkCSlice(1, 3, 3, 3)[0] // m=10, bipartite
	general := dataset.BenchmarkA(1)[0]
	relorder := dataset.BenchmarkCSlice(1, 1, 2, 3)[0]
	// A larger two-label fixture whose solve expands hundreds of thousands
	// of transitions: its allocs/op is dominated by the fixed per-solve
	// setup, so any per-transition allocation sneaking into the DP inner
	// loop multiplies the number instead of nudging it.
	allocProbe := dataset.BenchmarkD(1)[120] // m=30 slice of Benchmark-D

	db, err := dataset.Figure1()
	if err != nil {
		return nil, err
	}
	adaptiveQ := ppd.MustParseUnion(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	exactEng := &ppd.Engine{DB: db, Method: ppd.MethodAdaptive, AdaptiveBudget: 1e12}
	sampledEng := &ppd.Engine{DB: db, Method: ppd.MethodAdaptive, AdaptiveBudget: 1,
		RejectionN: 512, Rng: rand.New(rand.NewSource(1))}
	autoEng := &ppd.Engine{DB: db, Method: ppd.MethodAuto}

	est, err := sampling.NewEstimator(general.Model, general.Lab, general.Union, sampling.Config{})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(1))

	// Service-layer fixtures for the Do-path throughput cases: the cache is
	// disabled so every iteration performs the full grounding + solving
	// work, making the legacy-vs-Do ratio a pure measure of the unified
	// API's indirection.
	svc := server.New(db, server.Config{Workers: 4, CacheSize: -1})
	batchQueries := []string{
		`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`,
		`P(_, _; c1; c2), C(c1, D, _, _, _, _), C(c2, R, _, _, _, _)`,
		`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`,
		`P(_, _; c1; c2), C(c1, D, _, _, JD, _), C(c2, R, _, _, _, _)`,
		`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`,
		`P(_, _; c1; c2), C(c1, D, _, _, _, _), C(c2, R, _, _, _, _)`,
		`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`,
		`P(_, _; c1; c2), C(c1, D, _, _, JD, _), C(c2, R, _, _, _, _)`,
	}
	batchRequests := make([]*ppd.Request, len(batchQueries))
	for i, q := range batchQueries {
		batchRequests[i] = &ppd.Request{Kind: ppd.KindBool, Query: q}
	}
	doReq := &ppd.Request{Kind: ppd.KindBool, Query: batchQueries[0]}
	compileReq := &ppd.Request{Kind: ppd.KindTopK, Query: batchQueries[0], K: 3, BoundEdges: 1}

	// Consensus fixtures: the exact path enumerates m! rankings per session
	// over figure1 (m=4) and folds the sufficient statistics; the sampled
	// path draws a fixed 512 rankings per session and folds counters. The
	// sampled request pins a seed so it measures one reproducible stream
	// instead of reseeding noise.
	consensusEng := &ppd.Engine{DB: db, Method: ppd.MethodAuto}
	consensusSampledEng := &ppd.Engine{DB: db, Method: ppd.MethodRejection,
		RejectionN: 512, Rng: rand.New(rand.NewSource(1))}
	consensusMedianReq := &ppd.Request{Kind: ppd.KindConsensus, Query: batchQueries[0],
		ConsensusTarget: consensus.TargetMedian}
	consensusMedianSampledReq := &ppd.Request{Kind: ppd.KindConsensus, Query: batchQueries[0],
		ConsensusTarget: consensus.TargetMedian, Seed: 1}
	consensusTopKReq := &ppd.Request{Kind: ppd.KindConsensus, Query: batchQueries[0],
		ConsensusTarget: consensus.TargetTopK, K: 2}

	// Compile-once / solve-many fixtures: one compiled plan per union shape
	// and 64 session models sharing its reference ranking (a Mallows phi
	// sweep, the many-sessions serving pattern of batched inference). The
	// batched-vs-loop pairs measure the same 64 solves through one
	// SolveSessions walk and through 64 single-session solves of the same
	// plan; the PR 6 acceptance criterion is loop/batched >= 2.
	mallowsSessions := func(sigma rank.Ranking, n int) []*rim.Model {
		ms := make([]*rim.Model, n)
		for i := range ms {
			ms[i] = rim.MustMallows(sigma, 0.05+0.9*float64(i)/float64(n-1)).Model()
		}
		return ms
	}
	tlSigma := twoLabel.Model.Reference()
	tlPlan, err := solver.CompilePlan(solver.AlgoTwoLabel, tlSigma, twoLabel.Lab, twoLabel.Union, solver.Options{})
	if err != nil {
		return nil, err
	}
	tlSessions := mallowsSessions(tlSigma, 64)
	bpSigma := bipartite.Model.Reference()
	bpPlan, err := solver.CompilePlan(solver.AlgoBipartite, bpSigma, bipartite.Lab, bipartite.Union, solver.Options{})
	if err != nil {
		return nil, err
	}
	bpSessions := mallowsSessions(bpSigma, 64)

	// Plan-cache steady state: solve cache disabled so every batch re-solves
	// its groups, plan cache enabled so every batch reuses the compiled
	// shapes — the case measures the grouped DoBatch path at a 100%
	// plan-cache hit rate.
	planSvc := server.New(db, server.Config{Workers: 4, CacheSize: -1})

	// Wide concurrent batch against a worker pool sized to the machine: the
	// DoBatch fan-out exercises the pooled solver arenas under concurrency
	// (every solve borrows and returns an arena), which is the serving
	// pattern the allocation-free core exists for.
	parSvc := server.New(db, server.Config{Workers: runtime.GOMAXPROCS(0) * 2, CacheSize: -1})
	parRequests := make([]*ppd.Request, 16)
	for i := range parRequests {
		parRequests[i] = &ppd.Request{Kind: ppd.KindBool, Query: batchQueries[i%len(batchQueries)]}
	}

	return []Case{
		{"solver/twolabel", func(int) error {
			_, err := solver.TwoLabel(twoLabel.Model.Model(), twoLabel.Lab, twoLabel.Union, solver.Options{})
			return err
		}},
		{"solver/bipartite", func(int) error {
			_, err := solver.Bipartite(bipartite.Model.Model(), bipartite.Lab, bipartite.Union, solver.Options{})
			return err
		}},
		{"solver/general", func(int) error {
			_, err := solver.General(general.Model.Model(), general.Lab, general.Union, solver.Options{})
			return err
		}},
		{"solver/relorder", func(int) error {
			_, err := solver.RelOrder(relorder.Model.Model(), relorder.Lab, relorder.Union, solver.Options{})
			return err
		}},
		// Allocation probe: a solve two orders of magnitude bigger than
		// solver/twolabel in expansion work. Compare the two cases'
		// allocs_per_op — near-equal means the inner loop is
		// allocation-free and only the per-solve setup allocates.
		{"solver/allocs", func(int) error {
			_, err := solver.TwoLabel(allocProbe.Model.Model(), allocProbe.Lab, allocProbe.Union, solver.Options{})
			return err
		}},
		// Compile-once / solve-many: compilation cost per union shape, then
		// 64 sessions through one batched walk vs 64 looped single-session
		// solves of the same compiled plan (the per-session speedup is the
		// loop/batched ratio), for the two-label and bipartite DP cores.
		{"solver/batched-compile", func(int) error {
			_, err := solver.CompilePlan(solver.AlgoTwoLabel, tlSigma, twoLabel.Lab, twoLabel.Union, solver.Options{})
			return err
		}},
		{"solver/batched-twolabel-64", func(int) error {
			_, err := solver.SolveSessions(tlPlan, tlSessions, solver.Options{})
			return err
		}},
		{"solver/batched-loop-twolabel-64", func(int) error {
			for _, m := range tlSessions {
				if _, err := tlPlan.Solve(m, solver.Options{}); err != nil {
					return err
				}
			}
			return nil
		}},
		{"solver/batched-bipartite-64", func(int) error {
			_, err := solver.SolveSessions(bpPlan, bpSessions, solver.Options{})
			return err
		}},
		{"solver/batched-loop-bipartite-64", func(int) error {
			for _, m := range bpSessions {
				if _, err := bpPlan.Solve(m, solver.Options{}); err != nil {
					return err
				}
			}
			return nil
		}},
		// Planner routing overhead: the pure cost-estimation step the
		// adaptive method adds in front of every group solve.
		{"planner/estimate-cost", func(int) error {
			est := ppd.EstimateCost(twoLabel.Model, twoLabel.Lab, twoLabel.Union, 12)
			if est.States <= 0 {
				return fmt.Errorf("degenerate estimate %v", est.States)
			}
			return nil
		}},
		// Adaptive end-to-end vs the auto baseline on the same query: their
		// ratio is the planner's full-evaluation overhead when every group
		// routes exact.
		{"planner/eval-adaptive-exact", func(int) error {
			_, err := exactEng.EvalUnion(adaptiveQ)
			return err
		}},
		{"planner/eval-auto-baseline", func(int) error {
			_, err := autoEng.EvalUnion(adaptiveQ)
			return err
		}},
		{"planner/eval-adaptive-sampled", func(int) error {
			_, err := sampledEng.EvalUnion(adaptiveQ)
			return err
		}},
		{"sampling/rejection-ci-512", func(int) error {
			_, _, err := sampling.RejectionModelCICtx(context.Background(), general.Model, general.Lab, general.Union, 512, 1.96, rng)
			return err
		}},
		{"sampling/mis-lite-5x100", func(int) error {
			_, err := est.Estimate(5, 100, rng, true)
			return err
		}},
		// Unified-API overhead: Compile alone, one Do-path evaluation
		// against its auto-engine baseline (planner/eval-auto-baseline
		// above), and batch throughput legacy vs Do — the PR 4 acceptance
		// comparison.
		{"do/compile", func(int) error {
			_, err := compileReq.Compile()
			return err
		}},
		{"do/engine-eval", func(int) error {
			_, err := autoEng.Do(context.Background(), doReq)
			return err
		}},
		{"do/service-batch-legacy-8", func(int) error {
			_, err := svc.EvalBatch(batchQueries)
			return err
		}},
		{"do/service-batch-8", func(int) error {
			_, err := svc.DoBatch(context.Background(), batchRequests)
			return err
		}},
		// Consensus serving costs: exact enumeration + fold, the same fold
		// fed by rejection sampling, and the top-k band construction.
		{"consensus/median-exact", func(int) error {
			_, err := consensusEng.Do(context.Background(), consensusMedianReq)
			return err
		}},
		{"consensus/median-sampled", func(int) error {
			_, err := consensusSampledEng.Do(context.Background(), consensusMedianSampledReq)
			return err
		}},
		{"consensus/topk", func(int) error {
			_, err := consensusEng.Do(context.Background(), consensusTopKReq)
			return err
		}},
		// Grouped batch at a 100% plan-cache hit rate (solve cache off, so
		// the groups genuinely re-solve through the cached plans each op).
		{"do/batched-plan-cache-8", func(int) error {
			_, err := planSvc.DoBatch(context.Background(), batchRequests)
			return err
		}},
		// Concurrent serving throughput over the pooled solver arenas.
		{"service/parallel-batch", func(int) error {
			_, err := parSvc.DoBatch(context.Background(), parRequests)
			return err
		}},
	}, nil
}

// Run measures every registered case: each op is timed over batches that
// grow until the batch takes at least benchTime.
func Run(benchTime time.Duration) (*Report, error) {
	cases, err := Cases()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		BenchTime: benchTime.String(),
	}
	for _, c := range cases {
		res, err := measure(c, benchTime)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", c.Name, err)
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}

// measure times batches of growing size until one takes at least target,
// then reports that batch's per-op time and allocations. One warm-up op
// runs untimed (it also warms the solver arena pools, so the timed batch
// sees steady-state allocation behavior).
func measure(c Case, target time.Duration) (Result, error) {
	if err := c.Op(0); err != nil {
		return Result{}, err
	}
	var ms runtime.MemStats
	n := 1
	for {
		runtime.ReadMemStats(&ms)
		mallocs := ms.Mallocs
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := c.Op(i); err != nil {
				return Result{}, err
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms)
		if elapsed >= target || n >= 1<<30 {
			return Result{
				Name:        c.Name,
				N:           n,
				NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
				AllocsPerOp: float64(ms.Mallocs-mallocs) / float64(n),
			}, nil
		}
		// Grow toward the target with headroom, at least doubling.
		grown := int(float64(n) * 1.5 * float64(target) / float64(elapsed+1))
		if grown < 2*n {
			grown = 2 * n
		}
		n = grown
	}
}

// WriteJSON writes the report, indented for diff-friendly archiving.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport loads a previously archived report file.
func ReadReport(p string) (*Report, error) {
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("parse %s: %w", p, err)
	}
	return &rep, nil
}

// Compare checks new against old and returns one message per regression:
// any case matching one of the path prefixes whose ns/op grew by more than
// maxRegress (e.g. 0.25 for +25%) regresses, as does any matching case
// whose allocs/op grew by more than maxRegress plus an absolute floor of 8
// allocs (absolute noise on tiny counts must not trip the gate; a true
// 0-alloc baseline is still gated by the floor). Cases present on only one
// side are ignored — the registry grows across PRs — and the allocation
// gate is skipped entirely against reports from before the harness
// recorded allocations (every case decoding as 0 allocs/op, e.g.
// BENCH_PR2.json).
func Compare(old, new *Report, prefixes []string, maxRegress float64) []string {
	oldBy := make(map[string]Result, len(old.Results))
	oldHasAllocs := false
	for _, r := range old.Results {
		oldBy[r.Name] = r
		if r.AllocsPerOp > 0 {
			oldHasAllocs = true
		}
	}
	matches := func(name string) bool {
		for _, p := range prefixes {
			if p == "" || name == p || (len(name) > len(p) && name[:len(p)] == p && name[len(p)] == '/') {
				return true
			}
			if ok, _ := path.Match(p, name); ok {
				return true
			}
		}
		return false
	}
	var fails []string
	for _, nr := range new.Results {
		or, ok := oldBy[nr.Name]
		if !ok || !matches(nr.Name) {
			continue
		}
		if or.NsPerOp > 0 && nr.NsPerOp > or.NsPerOp*(1+maxRegress) {
			fails = append(fails, fmt.Sprintf("%s: %.0f ns/op -> %.0f ns/op (+%.0f%%, limit +%.0f%%)",
				nr.Name, or.NsPerOp, nr.NsPerOp,
				100*(nr.NsPerOp/or.NsPerOp-1), 100*maxRegress))
		}
		if oldHasAllocs && nr.AllocsPerOp > or.AllocsPerOp*(1+maxRegress)+8 {
			fails = append(fails, fmt.Sprintf("%s: %.1f allocs/op -> %.1f allocs/op (limit +%.0f%% + 8)",
				nr.Name, or.AllocsPerOp, nr.AllocsPerOp, 100*maxRegress))
		}
	}
	return fails
}
