package probpref

import (
	"math"
	"testing"
)

// The facade must expose a working end-to-end pipeline.
func TestFacadeEndToEnd(t *testing.T) {
	db, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{DB: db, Method: MethodAuto}
	q, err := ParseQuery(`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prob <= 0 || res.Prob > 1 {
		t.Fatalf("Prob = %v", res.Prob)
	}
	if len(res.PerSession) != 3 {
		t.Fatalf("sessions = %d", len(res.PerSession))
	}
}

func TestFacadeModels(t *testing.T) {
	ml, err := NewMallows(Identity(4), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if ml.M() != 4 {
		t.Fatalf("M = %d", ml.M())
	}
	if _, err := NewMallows(Ranking{0, 0, 1, 2}, 0.5); err == nil {
		t.Fatal("invalid sigma accepted")
	}
	cons := NewPartialOrder()
	cons.Add(Item(3), Item(0))
	if _, err := NewAMP(ml.Sigma, ml.Phi, cons); err != nil {
		t.Fatal(err)
	}
	pi := [][]float64{{1}, {0.5, 0.5}}
	if _, err := NewRIM(Identity(2), pi); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSolvers(t *testing.T) {
	ml, err := NewMallows(Identity(4), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	lab := NewLabeling()
	lab.Add(Item(3), Label(0))
	lab.Add(Item(0), Label(1))
	u := Union{TwoLabelPattern(LabelSet{0}, LabelSet{1})}
	var probs []float64
	for _, f := range []func(*RIMModel, *Labeling, Union, SolverOptions) (float64, error){
		SolveAuto, SolveTwoLabel, SolveBipartite, SolveGeneral, SolveRelOrder,
	} {
		p, err := f(ml.Model(), lab, u, SolverOptions{})
		if err != nil {
			t.Fatal(err)
		}
		probs = append(probs, p)
	}
	for _, p := range probs[1:] {
		if math.Abs(p-probs[0]) > 1e-9 {
			t.Fatalf("solvers disagree: %v", probs)
		}
	}
	if KendallTau(Identity(3), Ranking{2, 1, 0}) != 3 {
		t.Fatal("KendallTau via facade broken")
	}
}

func TestFacadeDatasets(t *testing.T) {
	if _, err := Polls(12, 20, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := MovieLens(40, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := CrowdRank(10, 1); err != nil {
		t.Fatal(err)
	}
}

func TestFacadePatternBuilding(t *testing.T) {
	nodes := []PatternNode{{Labels: LabelSet{0}}, {Labels: LabelSet{1}}}
	g, err := NewPattern(nodes, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsTwoLabel() {
		t.Fatal("expected two-label pattern")
	}
	if _, err := NewPattern(nodes, [][2]int{{0, 1}, {1, 0}}); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestFacadeEstimator(t *testing.T) {
	ml, err := NewMallows(Identity(5), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	lab := NewLabeling()
	lab.Add(Item(4), Label(0))
	lab.Add(Item(0), Label(1))
	u := Union{TwoLabelPattern(LabelSet{0}, LabelSet{1})}
	est, err := NewEstimator(ml, lab, u, EstimatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if est.NumSubRankings() != 1 {
		t.Fatalf("sub-rankings = %d", est.NumSubRankings())
	}
}
