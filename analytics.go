package probpref

import (
	"math/rand"

	"probpref/internal/analytics"
	"probpref/internal/pattern"
	"probpref/internal/ppd"
	"probpref/internal/rim"
	"probpref/internal/sampling"
)

// Extended models (the paper's future-work direction of preference models
// beyond plain Mallows).
type (
	// GeneralizedMallows is the Fligner-Verducci model with per-step
	// dispersions; it is a RIM, so every exact solver applies through
	// Model().
	GeneralizedMallows = rim.GeneralizedMallows
	// PlackettLuce is the Plackett-Luce choice model; it is not a RIM and is
	// queried through sampling or enumeration.
	PlackettLuce = rim.PlackettLuce
	// RankModel is the interface shared by all ranking models: sampling plus
	// pointwise probability.
	RankModel = rim.Sampler
	// SessionModel is the interface a model must satisfy to serve as a
	// session distribution in a PPD (any RIM-backed model qualifies:
	// Mallows, GeneralizedMallows, or a raw RIMModel).
	SessionModel = rim.SessionModel
)

// NewGeneralizedMallows validates and constructs a Generalized Mallows
// model.
func NewGeneralizedMallows(sigma Ranking, phis []float64) (*GeneralizedMallows, error) {
	return rim.NewGeneralizedMallows(sigma, phis)
}

// NewPlackettLuce validates and constructs a Plackett-Luce model.
func NewPlackettLuce(weights []float64) (*PlackettLuce, error) {
	return rim.NewPlackettLuce(weights)
}

// ConditionedRIM samples from (an approximation of) the posterior of an
// arbitrary RIM conditioned on a partial order — the AMP sampler
// generalized beyond Mallows.
type ConditionedRIM = rim.ConditionedRIM

// NewConditionedRIM builds a conditioned sampler for any RIM.
func NewConditionedRIM(m *RIMModel, cons *PartialOrder) (*ConditionedRIM, error) {
	return rim.NewConditionedRIM(m, cons)
}

// ISRIM estimates the probability that a ranking from an arbitrary RIM is
// consistent with the sub-ranking psi, by importance sampling over the
// conditioned-RIM proposal.
func ISRIM(m *RIMModel, psi Ranking, n int, rng *rand.Rand) (float64, error) {
	return sampling.ISRIM(m, psi, n, rng)
}

// MISRIM estimates the pattern-union probability for an arbitrary RIM by
// multiple importance sampling over one conditioned proposal per
// sub-ranking of the union's decomposition. The boolean result reports
// whether the decomposition was truncated (in which case the estimate is a
// lower bound).
func MISRIM(m *RIMModel, lab *Labeling, u Union, n int, rng *rand.Rand) (float64, bool, error) {
	return sampling.MISRIM(m, lab, u, n, rng, pattern.Limits{})
}

// RejectionSample estimates the pattern-union probability for any ranking
// model (including non-RIMs such as Plackett-Luce) by Monte Carlo.
func RejectionSample(mdl RankModel, lab *Labeling, u Union, n int, rng *rand.Rand) float64 {
	return sampling.RejectionModel(mdl, lab, u, n, rng)
}

// Marginal analytics: exact polynomial-time inference over RIM models.

// PositionDistribution returns the exact distribution of the final position
// of item x under the model (position 0 most preferred).
func PositionDistribution(m *RIMModel, x Item) ([]float64, error) {
	return analytics.PositionDistribution(m, x)
}

// RankMarginals returns the doubly-stochastic matrix out[x][p] =
// Pr(item x at position p).
func RankMarginals(m *RIMModel) [][]float64 { return analytics.RankMarginals(m) }

// PairwiseProb returns Pr(a preferred to b) under the model.
func PairwiseProb(m *RIMModel, a, b Item) (float64, error) {
	return analytics.PairwiseProb(m, a, b)
}

// PairwiseMatrix returns the matrix out[a][b] = Pr(a preferred to b).
func PairwiseMatrix(m *RIMModel) [][]float64 { return analytics.PairwiseMatrix(m) }

// TopKProb returns Pr(item x ranked among the top k positions).
func TopKProb(m *RIMModel, x Item, k int) (float64, error) {
	return analytics.TopKProb(m, x, k)
}

// ExpectedRank returns the expected 0-based position of item x.
func ExpectedRank(m *RIMModel, x Item) (float64, error) {
	return analytics.ExpectedRank(m, x)
}

// ExpectedDistanceToReference returns E[dist(sigma, tau)] for a model draw.
func ExpectedDistanceToReference(m *RIMModel) float64 {
	return analytics.ExpectedDistanceToReference(m)
}

// ExpectedKendall returns the expected Kendall tau distance between a model
// draw and the fixed ranking rho.
func ExpectedKendall(m *RIMModel, rho Ranking) (float64, error) {
	return analytics.ExpectedKendall(m, rho)
}

// ExpectedFootrule returns the expected Spearman footrule distance between
// a model draw and the fixed ranking rho.
func ExpectedFootrule(m *RIMModel, rho Ranking) (float64, error) {
	return analytics.ExpectedFootrule(m, rho)
}

// ExpectedSpearman returns the expected Spearman (squared-displacement)
// distance between a model draw and the fixed ranking rho.
func ExpectedSpearman(m *RIMModel, rho Ranking) (float64, error) {
	return analytics.ExpectedSpearman(m, rho)
}

// CondorcetWinner returns the item beating every other item with pairwise
// probability above 1/2, if one exists.
func CondorcetWinner(pairwise [][]float64) (Item, bool) {
	return analytics.CondorcetWinner(pairwise)
}

// CopelandScores returns per-item Copeland scores (ties count 1/2).
func CopelandScores(pairwise [][]float64) []float64 {
	return analytics.CopelandScores(pairwise)
}

// BordaScores returns per-item expected Borda scores.
func BordaScores(pairwise [][]float64) []float64 {
	return analytics.BordaScores(pairwise)
}

// MixturePairwiseMatrix returns the pairwise matrix of a Mallows mixture.
func MixturePairwiseMatrix(mx *Mixture) [][]float64 {
	return analytics.MixturePairwiseMatrix(mx)
}

// MixtureRankMarginals returns the rank marginals of a Mallows mixture.
func MixtureRankMarginals(mx *Mixture) [][]float64 {
	return analytics.MixtureRankMarginals(mx)
}

// Count-Session distributions and union queries.
type (
	// CountDistribution is the exact Poisson-binomial distribution of
	// count(Q) over the sessions.
	CountDistribution = ppd.CountDistribution
	// UnionQuery is a union of conjunctive queries over one p-relation.
	UnionQuery = ppd.UnionQuery
	// UnionExplanation reports the plan of a union query.
	UnionExplanation = ppd.UnionExplanation
)

// NewCountDistribution builds the distribution of the number of successes
// among independent trials with the given probabilities.
func NewCountDistribution(probs []float64) (*CountDistribution, error) {
	return ppd.NewCountDistribution(probs)
}

// ParseUnionQuery parses a union of conjunctive queries separated by "|".
func ParseUnionQuery(src string) (*UnionQuery, error) { return ppd.ParseUnion(src) }

// PopulationPairwise returns the pairwise preference matrix of a
// p-relation averaged over its sessions.
func PopulationPairwise(db *DB, prefName string) ([][]float64, error) {
	return db.PopulationPairwise(prefName)
}

// PopulationRankMarginals returns the session-averaged rank marginals of a
// p-relation.
func PopulationRankMarginals(db *DB, prefName string) ([][]float64, error) {
	return db.PopulationRankMarginals(prefName)
}
