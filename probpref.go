// Package probpref supports hard queries over probabilistic preferences: it
// is a from-scratch Go implementation of the RIM-PPD framework of Ping,
// Stoyanovich and Kimelfeld, "Supporting Hard Queries over Probabilistic
// Preferences" (PVLDB 13(7), 2020).
//
// A probabilistic preference database (PPD) combines ordinary relations
// with preference relations whose sessions carry statistical ranking models
// — Mallows models, and more generally Repeated Insertion Models (RIM).
// Query evaluation under possible-world semantics reduces to an inference
// problem: computing the marginal probability that a random ranking matches
// a union of label patterns. This package exposes:
//
//   - the ranking substrate: rankings, partial orders, Kendall tau
//     (Ranking, PartialOrder, KendallTau);
//   - the generative models: RIM, Mallows, and the AMP posterior sampler
//     (RIMModel, Mallows, AMP);
//   - label patterns and pattern unions (Pattern, Union);
//   - the exact solvers of the paper — two-label (Algorithm 3), bipartite
//     (Algorithm 4), general inclusion-exclusion, and a relative-order
//     solver for arbitrary patterns (SolveTwoLabel, SolveBipartite,
//     SolveGeneral, SolveRelOrder, SolveAuto);
//   - the approximate solvers — rejection sampling, IS-AMP, MIS-AMP, and
//     the MIS-AMP-lite/-adaptive estimators with sub-ranking and modal
//     compensation (Rejection, NewEstimator);
//   - the database layer: schema, the datalog-style conjunctive query
//     parser, the grounding procedure for hard (non-itemwise) queries, and
//     the evaluator for Boolean, Count-Session and Most-Probable-Session
//     queries (DB, ParseQuery, Engine);
//   - deterministic generators for the paper's experimental workloads
//     (package internal/dataset, surfaced through the examples and the
//     cmd/experiments tool);
//   - exact marginal analytics — position distributions, pairwise
//     preference matrices, Condorcet/Copeland/Borda summaries
//     (PairwiseMatrix, RankMarginals, CondorcetWinner);
//   - Count-Session distributions (Engine.CountDistribution), union
//     queries (ParseUnionQuery, Engine.EvalUnion, Engine.TopKUnion);
//   - preference models beyond plain Mallows — GeneralizedMallows (a RIM;
//     exact solvers apply) and PlackettLuce (queried through sampling);
//   - learning: FitMallows and FitMixture recover Mallows models and
//     mixtures from observed rankings by Kemeny search and EM;
//   - the concurrent query service layer: a process-wide sharded LRU solve
//     cache shared across queries (NewSolveCache, Engine.Cache), and a
//     Service with batch APIs that deduplicate inference groups across the
//     queries of a batch and serve an HTTP/JSON front end (NewService,
//     Service.Handler, cmd/hardqd);
//   - deadline-aware adaptive planning: context-accepting variants of every
//     evaluation entry point (Engine.EvalCtx, Service.EvalBatchCtx, ...)
//     thread cancellation down to solver DP layers and sampling rounds, and
//     MethodAdaptive routes each inference group to the cheapest adequate
//     exact solver or — when the predicted cost exceeds the remaining
//     deadline budget — to sampling with reported confidence half-widths
//     (EstimateCost, PlanStats, EvalResult.Plan);
//   - the model registry: a concurrent named catalog of dataset-backed
//     models with lazy builds, startup manifests and reference-counted
//     eviction, served simultaneously by a multi-model Service whose
//     shared solve cache namespaces keys per model (NewRegistry,
//     OpenDataset, NewMultiService, cmd/hardqd -manifest);
//   - the unified query API: one typed Request (Kind: bool | count | topk |
//     aggregate | countdist) validated by Request.Compile and answered
//     through a single entry point per layer — Engine.Do, Service.Do and
//     Service.DoBatch, and the daemon's versioned POST /v1/query endpoint
//     with NDJSON streaming of top-k rows. The per-kind methods (Eval,
//     TopK, CountSession, ...) remain as the documented compatibility
//     surface, each a thin wrapper over Do with byte-identical results
//     (Request, Response, Kind, ParseKind).
//
// # Quick start
//
//	db, _ := probpref.Figure1()
//	eng := &probpref.Engine{DB: db, Method: probpref.MethodAuto}
//	resp, _ := eng.Do(context.Background(), &probpref.Request{
//		Kind:  probpref.KindBool,
//		Query: `P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`,
//	})
//	fmt.Println(resp.Prob) // probability a female candidate is preferred to a male one
//
// See the examples directory for end-to-end programs, docs/ARCHITECTURE.md
// for the layer-by-layer walkthrough of the serving stack, docs/API.md for
// the daemon's HTTP endpoint reference, and internal/experiment for the
// reproduction of the figures of the paper's evaluation.
package probpref

import (
	"probpref/internal/consensus"
	"probpref/internal/dataset"
	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/ppd"
	"probpref/internal/rank"
	"probpref/internal/registry"
	"probpref/internal/rim"
	"probpref/internal/sampling"
	"probpref/internal/server"
	"probpref/internal/solver"
)

// Ranking substrate.
type (
	// Item identifies a ranked item.
	Item = rank.Item
	// Ranking is a linear order of items (position 0 most preferred).
	Ranking = rank.Ranking
	// PartialOrder is a strict partial order over items.
	PartialOrder = rank.PartialOrder
)

// Identity returns the ranking <0, 1, ..., m-1>.
func Identity(m int) Ranking { return rank.Identity(m) }

// KendallTau returns the Kendall tau distance between two rankings.
func KendallTau(a, b Ranking) int { return rank.KendallTau(a, b) }

// NewPartialOrder returns an empty partial order.
func NewPartialOrder() *PartialOrder { return rank.NewPartialOrder() }

// Models.
type (
	// RIMModel is a Repeated Insertion Model RIM(sigma, Pi).
	RIMModel = rim.Model
	// Mallows is the Mallows model MAL(sigma, phi).
	Mallows = rim.Mallows
	// AMP samples from a Mallows posterior conditioned on a partial order.
	AMP = rim.AMP
)

// NewRIM validates and constructs a RIM model.
func NewRIM(sigma Ranking, pi [][]float64) (*RIMModel, error) { return rim.New(sigma, pi) }

// NewMallows validates and constructs a Mallows model.
func NewMallows(sigma Ranking, phi float64) (*Mallows, error) { return rim.NewMallows(sigma, phi) }

// Mixture is a finite mixture of Mallows models.
type Mixture = rim.Mixture

// NewMixture validates and constructs a Mallows mixture.
func NewMixture(components []*Mallows, weights []float64) (*Mixture, error) {
	return rim.NewMixture(components, weights)
}

// NewAMP builds an AMP sampler conditioned on cons.
func NewAMP(center Ranking, phi float64, cons *PartialOrder) (*AMP, error) {
	return rim.NewAMP(center, phi, cons)
}

// Labels and patterns.
type (
	// Label is an interned label id.
	Label = label.Label
	// LabelSet is a sorted set of labels.
	LabelSet = label.Set
	// Labeling maps items to label sets.
	Labeling = label.Labeling
	// Pattern is a label pattern: a DAG over label-set nodes.
	Pattern = pattern.Pattern
	// PatternNode is one pattern node.
	PatternNode = pattern.Node
	// Union is a union of patterns.
	Union = pattern.Union
)

// NewLabeling returns an empty labeling function.
func NewLabeling() *Labeling { return label.NewLabeling() }

// NewPattern constructs a pattern and validates acyclicity.
func NewPattern(nodes []PatternNode, edges [][2]int) (*Pattern, error) {
	return pattern.New(nodes, edges)
}

// TwoLabelPattern builds the two-label pattern {l > r}.
func TwoLabelPattern(l, r LabelSet) *Pattern { return pattern.TwoLabel(l, r) }

// Exact solvers.
type (
	// SolverOptions tunes exact solver invocations.
	SolverOptions = solver.Options
	// SolverStats reports solver effort.
	SolverStats = solver.Stats
)

// SolveAuto dispatches to the most specific exact solver for the union.
func SolveAuto(m *RIMModel, lab *Labeling, u Union, opts SolverOptions) (float64, error) {
	return solver.Auto(m, lab, u, opts)
}

// SolveTwoLabel runs Algorithm 3 on a union of two-label patterns.
func SolveTwoLabel(m *RIMModel, lab *Labeling, u Union, opts SolverOptions) (float64, error) {
	return solver.TwoLabel(m, lab, u, opts)
}

// SolveBipartite runs Algorithm 4 on a union of bipartite patterns.
func SolveBipartite(m *RIMModel, lab *Labeling, u Union, opts SolverOptions) (float64, error) {
	return solver.Bipartite(m, lab, u, opts)
}

// SolveGeneral runs the inclusion-exclusion general solver.
func SolveGeneral(m *RIMModel, lab *Labeling, u Union, opts SolverOptions) (float64, error) {
	return solver.General(m, lab, u, opts)
}

// SolveRelOrder runs the relative-order solver for arbitrary patterns.
func SolveRelOrder(m *RIMModel, lab *Labeling, u Union, opts SolverOptions) (float64, error) {
	return solver.RelOrder(m, lab, u, opts)
}

// Approximate solvers.
type (
	// Estimator runs MIS-AMP-lite and MIS-AMP-adaptive.
	Estimator = sampling.Estimator
	// EstimatorConfig tunes estimator construction.
	EstimatorConfig = sampling.Config
	// AdaptiveConfig tunes MIS-AMP-adaptive.
	AdaptiveConfig = sampling.AdaptiveConfig
)

// NewEstimator prepares MIS-AMP proposals for one model and union.
func NewEstimator(ml *Mallows, lab *Labeling, u Union, cfg EstimatorConfig) (*Estimator, error) {
	return sampling.NewEstimator(ml, lab, u, cfg)
}

// Database layer.
type (
	// DB is a RIM-PPD instance.
	DB = ppd.DB
	// Relation is an ordinary relation.
	Relation = ppd.Relation
	// PrefRelation is a preference relation.
	PrefRelation = ppd.PrefRelation
	// Session is one preference session.
	Session = ppd.Session
	// Query is a parsed conjunctive query.
	Query = ppd.Query
	// Engine evaluates queries.
	Engine = ppd.Engine
	// EvalResult reports an evaluation.
	EvalResult = ppd.EvalResult
	// SessionProb pairs a session with its probability.
	SessionProb = ppd.SessionProb
	// Method selects the per-session solver.
	Method = ppd.Method
	// Explanation reports a query plan (classification, grounding,
	// grouping, recommended method).
	Explanation = ppd.Explanation
	// PlanStats reports MethodAdaptive's routing decisions and confidence
	// half-widths (EvalResult.Plan / TopKDiag.Plan).
	PlanStats = ppd.PlanStats
	// SolveReport describes how one inference group was answered
	// (Engine.SolveUnionCtx).
	SolveReport = ppd.SolveReport
	// CostEstimate predicts the exact-inference work of one group.
	CostEstimate = ppd.CostEstimate
	// AggregateResult reports an aggregation over satisfying sessions.
	AggregateResult = ppd.AggregateResult
	// TopKDiag reports the work of a Most-Probable-Session evaluation.
	TopKDiag = ppd.TopKDiag
	// SessionStore is the session-source seam between the engine and
	// storage: RAM slices, mmap-backed snapshots and ingest tails all
	// serve sessions through it.
	SessionStore = ppd.SessionStore
	// SessionSlice is the RAM-backed SessionStore.
	SessionSlice = ppd.SessionSlice
)

// ConcatSessions returns a store listing base's sessions followed by
// tail's; it is how streaming ingest layers appended sessions over an
// immutable snapshot.
func ConcatSessions(base, tail SessionStore) SessionStore {
	return ppd.ConcatSessions(base, tail)
}

// Solver methods.
const (
	MethodAuto        = ppd.MethodAuto
	MethodTwoLabel    = ppd.MethodTwoLabel
	MethodBipartite   = ppd.MethodBipartite
	MethodGeneral     = ppd.MethodGeneral
	MethodRelOrder    = ppd.MethodRelOrder
	MethodMISAdaptive = ppd.MethodMISAdaptive
	MethodMISLite     = ppd.MethodMISLite
	MethodRejection   = ppd.MethodRejection
	MethodAdaptive    = ppd.MethodAdaptive
)

// ParseMethod resolves a method name to its Method; the error of an unknown
// name enumerates the valid names.
func ParseMethod(s string) (Method, error) { return ppd.ParseMethod(s) }

// Unified query API.
type (
	// Request is the single typed request shape of the query API: one value
	// describes any query class, validated by Request.Compile and answered
	// by Engine.Do, Service.Do/DoBatch or the daemon's POST /v1/query.
	Request = ppd.Request
	// Response is the unified answer of the query API; the sections a Kind
	// does not produce stay zero, and Response.Sessions streams the
	// per-session rows as an iterator.
	Response = ppd.Response
	// CompiledRequest is the validated, executable form of a Request.
	CompiledRequest = ppd.CompiledRequest
	// Kind selects the query class of a Request.
	Kind = ppd.Kind
)

// Query kinds of the unified API.
const (
	// KindBool asks for the Boolean confidence Pr(Q | D).
	KindBool = ppd.KindBool
	// KindCount asks for the Count-Session expectation count(Q).
	KindCount = ppd.KindCount
	// KindTopK asks for the Most-Probable-Session answer top(Q, k).
	KindTopK = ppd.KindTopK
	// KindAggregate asks for sum/avg of an attribute over satisfying
	// sessions.
	KindAggregate = ppd.KindAggregate
	// KindCountDist asks for the exact distribution of count(Q).
	KindCountDist = ppd.KindCountDist
	// KindConsensus asks for a consensus answer over the conditioned
	// session population (select which with Request.ConsensusTarget).
	KindConsensus = ppd.KindConsensus
)

// ParseKind resolves a kind name to its Kind; the error of an unknown name
// enumerates the valid names.
func ParseKind(s string) (Kind, error) { return ppd.ParseKind(s) }

// KindNames lists the canonical kind names ParseKind accepts.
func KindNames() []string { return ppd.KindNames() }

// Consensus & rank aggregation (kind consensus).
type (
	// ConsensusTarget selects which consensus answer a consensus request
	// asks for.
	ConsensusTarget = consensus.Target
	// ConsensusResult is the consensus section of a Response: the folded
	// answer, the item-key domain and the mergeable per-session rows.
	ConsensusResult = ppd.ConsensusResult
	// ConsensusRow is one session's sufficient statistic of a consensus
	// answer; a coordinator concatenates partition rows and re-solves.
	ConsensusRow = consensus.Row
)

// Consensus targets of the consensus query kind.
const (
	// ConsensusMAP asks for the most-probable ranking of the conditioned
	// posterior, with its probability.
	ConsensusMAP = consensus.TargetMAP
	// ConsensusMedian asks for the ranking minimizing the expected Kendall
	// tau distance to the population.
	ConsensusMedian = consensus.TargetMedian
	// ConsensusTopK asks for per-item top-k membership probabilities with
	// certainty bands.
	ConsensusTopK = consensus.TargetTopK
)

// ParseConsensusTarget resolves a consensus target name ("map", "median",
// "topk") to its ConsensusTarget; the error of an unknown name enumerates
// the valid names.
func ParseConsensusTarget(s string) (ConsensusTarget, error) { return consensus.ParseTarget(s) }

// ConsensusTargetNames lists the canonical consensus target names
// ParseConsensusTarget accepts.
func ConsensusTargetNames() []string { return consensus.TargetNames() }

// EstimateCost predicts the cheapest adequate exact solver and its work for
// one (session model, pattern union) inference group; MethodAdaptive's
// planner routes on it.
func EstimateCost(sm SessionModel, lab *Labeling, u Union, maxInvolved int) CostEstimate {
	return ppd.EstimateCost(sm, lab, u, maxInvolved)
}

// Service layer.
type (
	// SolveCache memoizes (model, union) inference results across queries;
	// set Engine.Cache to share solves between evaluations.
	SolveCache = ppd.SolveCache
	// Cache is the sharded LRU SolveCache of the service layer.
	Cache = server.Cache
	// CacheStats snapshots cache effectiveness.
	CacheStats = server.CacheStats
	// Service is the concurrent query front end: shared solve cache, batch
	// dedup, bounded worker pool, HTTP handler.
	Service = server.Service
	// ServiceConfig tunes a Service.
	ServiceConfig = server.Config
	// ServiceStats snapshots a Service's counters.
	ServiceStats = server.Stats
	// BatchResult reports a Service.EvalBatch.
	BatchResult = server.BatchResult
	// TopKRequest is one query of a Service.TopKBatch.
	TopKRequest = server.TopKRequest
	// TopKResult is one answer of a Service.TopKBatch.
	TopKResult = server.TopKResult
	// DoBatchResult reports a Service.DoBatch: unified responses plus the
	// grouped path's inference-dedup accounting.
	DoBatchResult = server.DoBatchResult
)

// NewSolveCache builds the sharded LRU solve cache holding up to capacity
// inference results; assign it to Engine.Cache or share it across engines.
func NewSolveCache(capacity int) *Cache { return server.NewCache(capacity) }

// NewService builds the concurrent query service over the single database
// db, registered in the service's catalog under DefaultModel.
func NewService(db *DB, cfg ServiceConfig) *Service { return server.New(db, cfg) }

// Registry layer.
type (
	// Registry is the concurrent named model catalog served by a
	// multi-model Service: dataset-backed models register as ModelSpecs and
	// build lazily, pre-built databases register with Registry.RegisterDB,
	// and deletion is reference-counted so in-flight queries finish before
	// a model unloads.
	Registry = registry.Registry
	// ModelSpec describes one named dataset-backed model (the unit of a
	// Manifest and of the daemon's POST /models body).
	ModelSpec = registry.Spec
	// ModelInfo is one row of a catalog listing.
	ModelInfo = registry.Info
	// ModelHandle is an open, reference-counted view of one cataloged
	// model; Close it when the query using it finishes.
	ModelHandle = registry.Handle
	// Manifest is the startup catalog file format of cmd/hardqd.
	Manifest = registry.Manifest
)

// DefaultModel is the catalog name NewService registers its database under
// and the model unqualified requests resolve to.
const DefaultModel = server.DefaultModel

// NewRegistry returns an empty model catalog.
func NewRegistry() *Registry { return registry.New() }

// NewMultiService builds the concurrent query service over a model
// catalog: requests carry a model name ("" selects DefaultModel) and the
// shared solve cache namespaces its keys per model.
func NewMultiService(reg *Registry, cfg ServiceConfig) *Service { return server.NewMulti(reg, cfg) }

// LoadManifest reads, parses and validates a model manifest file.
func LoadManifest(path string) (*Manifest, error) { return registry.LoadManifest(path) }

// OpenDataset builds the dataset-backed database described by spec — the
// one-shot, catalog-free form of a registry load. The spec is validated
// like any catalog spec, so it needs a well-formed Name and a known
// Dataset.
func OpenDataset(spec ModelSpec) (*DB, error) {
	db, _, err := registry.Build(spec)
	return db, err
}

// NewDB builds a database around an item relation.
func NewDB(items *Relation) (*DB, error) { return ppd.NewDB(items) }

// NewRelation validates and constructs an ordinary relation.
func NewRelation(name string, attrs []string, tuples [][]string) (*Relation, error) {
	return ppd.NewRelation(name, attrs, tuples)
}

// ParseQuery parses a conjunctive query in the paper's datalog notation.
func ParseQuery(src string) (*Query, error) { return ppd.Parse(src) }

// Datasets.

// Figure1 builds the running example of the paper (Figure 1).
func Figure1() (*DB, error) { return dataset.Figure1() }

// Polls generates the synthetic polling database of Section 6.1.
func Polls(candidates, voters int, seed int64) (*DB, error) {
	return dataset.Polls(dataset.PollsConfig{Candidates: candidates, Voters: voters, Seed: seed})
}

// MovieLens generates the MovieLens-like catalog and mixture sessions.
func MovieLens(movies int, seed int64) (*DB, error) {
	return dataset.MovieLens(dataset.MovieLensConfig{Movies: movies, Seed: seed})
}

// CrowdRank generates the CrowdRank-like HIT, workers and sessions with
// the paper's HIT size (20 movies).
func CrowdRank(workers int, seed int64) (*DB, error) {
	return dataset.CrowdRank(dataset.CrowdRankConfig{Workers: workers, Seed: seed})
}

// CrowdRankHIT is CrowdRank with an explicit HIT size (number of movies,
// minimum 6). Smaller HITs keep the per-session exact inference cheap.
func CrowdRankHIT(workers, movies int, seed int64) (*DB, error) {
	return dataset.CrowdRank(dataset.CrowdRankConfig{Workers: workers, Movies: movies, Seed: seed})
}
