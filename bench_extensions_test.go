package probpref

// Benchmarks for the extension subsystems beyond the paper's figures:
// exact marginal analytics, the Generalized Mallows and Plackett-Luce
// models, Count-Session distributions, and union queries. The
// PairwiseDP-vs-TwoLabelSolver pair is an ablation: both compute the same
// pairwise marginal, the dedicated DP in O(m^2) and the pattern solver in
// O(m^3).

import (
	"fmt"
	"math/rand"
	"testing"

	"probpref/internal/analytics"
	"probpref/internal/label"
	"probpref/internal/pattern"
	"probpref/internal/ppd"
	"probpref/internal/rim"
	"probpref/internal/solver"
)

func BenchmarkAnalyticsPairwiseMatrix(b *testing.B) {
	for _, m := range []int{20, 50, 100} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			mdl := rim.MustMallows(Identity(m), 0.5).Model()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				analytics.PairwiseMatrix(mdl)
			}
		})
	}
}

func BenchmarkAnalyticsRankMarginals(b *testing.B) {
	mdl := rim.MustMallows(Identity(100), 0.5).Model()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analytics.RankMarginals(mdl)
	}
}

// BenchmarkAblationPairwiseDP computes one pairwise marginal Pr(a > b)
// with the dedicated O(m^2) position DP.
func BenchmarkAblationPairwiseDP(b *testing.B) {
	mdl := rim.MustMallows(Identity(40), 0.5).Model()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analytics.PairwiseProb(mdl, 30, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPairwiseTwoLabel computes the same marginal through the
// paper's two-label solver with singleton labels; the gap against
// BenchmarkAblationPairwiseDP is the value of the specialized DP.
func BenchmarkAblationPairwiseTwoLabel(b *testing.B) {
	mdl := rim.MustMallows(Identity(40), 0.5).Model()
	lab := label.NewLabeling()
	lab.Add(30, 0)
	lab.Add(5, 1)
	u := pattern.Union{pattern.TwoLabel(label.NewSet(0), label.NewSet(1))}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.TwoLabel(mdl, lab, u, solver.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGeneralizedMallowsSample(b *testing.B) {
	phis := make([]float64, 100)
	for i := range phis {
		phis[i] = float64(i) / 100
	}
	gm := rim.MustGeneralizedMallows(Identity(100), phis)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gm.Sample(rng)
	}
}

func BenchmarkPlackettLuceSample(b *testing.B) {
	weights := make([]float64, 100)
	for i := range weights {
		weights[i] = 1 + float64(i%10)
	}
	pl := rim.MustPlackettLuce(weights)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl.Sample(rng)
	}
}

func BenchmarkCountDistribution(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("sessions=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			probs := make([]float64, n)
			for i := range probs {
				probs[i] = rng.Float64()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ppd.NewCountDistribution(probs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkUnionQueryEval(b *testing.B) {
	db, err := Figure1()
	if err != nil {
		b.Fatal(err)
	}
	eng := &Engine{DB: db, Method: MethodAuto}
	uq, err := ParseUnionQuery(
		`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)` +
			` | P(_, _; c1; c2), C(c1, D, _, _, JD, _), C(c2, R, _, _, _, _)`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.EvalUnion(uq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtX1PairwiseAblation regenerates extension experiment x1
// (pairwise DP vs two-label solver).
func BenchmarkExtX1PairwiseAblation(b *testing.B) { benchFigure(b, "x1") }

// BenchmarkExtX2MixtureLearning regenerates extension experiment x2
// (EM parameter recovery).
func BenchmarkExtX2MixtureLearning(b *testing.B) { benchFigure(b, "x2") }

// BenchmarkExtX3CountDistribution regenerates extension experiment x3
// (exact Count-Session distribution vs Monte Carlo worlds).
func BenchmarkExtX3CountDistribution(b *testing.B) { benchFigure(b, "x3") }

// BenchmarkExtX4GeneralizedMallows regenerates extension experiment x4
// (Generalized Mallows inference, exact vs MISRIM).
func BenchmarkExtX4GeneralizedMallows(b *testing.B) { benchFigure(b, "x4") }

func BenchmarkFitMixtureEM(b *testing.B) {
	truth := rim.MustMallows(Identity(8), 0.3)
	rng := rand.New(rand.NewSource(21))
	data := make([]Ranking, 400)
	for i := range data {
		data[i] = truth.Sample(rng)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitMixture(data, 2, 8, MixtureConfig{Seed: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMISRIMGeneralizedMallows(b *testing.B) {
	phis := make([]float64, 12)
	for i := range phis {
		phis[i] = 0.1 + 0.07*float64(i)
	}
	gm := rim.MustGeneralizedMallows(Identity(12), phis)
	lab := label.NewLabeling()
	lab.Add(11, 0)
	lab.Add(10, 0)
	lab.Add(0, 1)
	u := pattern.Union{pattern.TwoLabel(label.NewSet(0), label.NewSet(1))}
	rng := rand.New(rand.NewSource(9))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MISRIM(gm.Model(), lab, u, 200, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPopulationPairwise(b *testing.B) {
	db, err := Polls(12, 60, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.PopulationPairwise("P"); err != nil {
			b.Fatal(err)
		}
	}
}
