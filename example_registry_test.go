package probpref_test

import (
	"context"
	"fmt"

	"probpref"
)

// ExampleRegistry catalogs two dataset-backed models, opens one lazily,
// and evicts it with reference counting: the handle opened before the
// delete keeps its database until closed.
func ExampleRegistry() {
	reg := probpref.NewRegistry()
	reg.Register(probpref.ModelSpec{Name: "figure1", Dataset: "figure1", Preload: true})
	reg.Register(probpref.ModelSpec{Name: "polls-small", Dataset: "polls", Candidates: 6, Voters: 4, Seed: 7})

	for _, in := range reg.List() {
		fmt.Printf("%s (%s) loaded=%v\n", in.Name, in.Dataset, in.Loaded)
	}

	h, err := reg.Open("polls-small") // first open builds the lazy model
	if err != nil {
		panic(err)
	}
	defer h.Close()
	fmt.Printf("opened %s: m=%d items\n", h.Name(), h.DB().M())

	reg.Delete("polls-small") // hidden from the catalog, handle unaffected
	fmt.Printf("after delete: %d model(s) cataloged, handle still has DB: %v\n",
		reg.Len(), h.DB() != nil)

	// Output:
	// figure1 (figure1) loaded=true
	// polls-small (polls) loaded=false
	// opened polls-small: m=6 items
	// after delete: 1 model(s) cataloged, handle still has DB: true
}

// ExampleOpenDataset builds a dataset-backed database without a catalog
// and queries it directly with an Engine.
func ExampleOpenDataset() {
	db, err := probpref.OpenDataset(probpref.ModelSpec{Name: "demo", Dataset: "figure1"})
	if err != nil {
		panic(err)
	}
	eng := &probpref.Engine{DB: db, Method: probpref.MethodAuto}
	q, err := probpref.ParseQuery(
		`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	if err != nil {
		panic(err)
	}
	res, err := eng.Eval(q)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Pr(Q|D) = %.6f\n", res.Prob)
	// Output:
	// Pr(Q|D) = 0.999104
}

// ExampleService_EvalBatch serves two named models from one multi-model
// service: each batch routes to its model, and the shared solve cache
// namespaces entries per model so tenants stay isolated.
func ExampleService_EvalBatch() {
	reg := probpref.NewRegistry()
	reg.Register(probpref.ModelSpec{Name: "tenant-a", Dataset: "figure1"})
	reg.Register(probpref.ModelSpec{Name: "tenant-b", Dataset: "figure1"})
	svc := probpref.NewMultiService(reg, probpref.ServiceConfig{Workers: 2})

	ctx := context.Background()
	q := `P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`
	for _, model := range []string{"tenant-a", "tenant-b"} {
		br, err := svc.EvalBatchModelCtx(ctx, model, []string{q, q})
		if err != nil {
			panic(err)
		}
		// The two identical queries of the batch share their inference
		// groups; the identical *other tenant* shares nothing.
		fmt.Printf("%s: Pr = %.6f, groups=%d solved=%d cache_hits=%d\n",
			model, br.Results[0].Prob, br.Groups, br.Solved, br.CacheHits)
	}
	// Output:
	// tenant-a: Pr = 0.999104, groups=3 solved=3 cache_hits=0
	// tenant-b: Pr = 0.999104, groups=3 solved=3 cache_hits=0
}
