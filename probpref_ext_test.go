package probpref

import (
	"math"
	"math/rand"
	"testing"
)

// The extension surfaces of the facade must be wired correctly to the
// internal packages; these tests exercise every wrapper once with a
// correctness assertion (not just absence of error).

func TestFacadeExtendedModels(t *testing.T) {
	gm, err := NewGeneralizedMallows(Identity(4), []float64{0.5, 0.5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ml, err := NewMallows(Identity(4), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	tau := Ranking{1, 0, 3, 2}
	if math.Abs(gm.Prob(tau)-ml.Prob(tau)) > 1e-12 {
		t.Fatal("equal-dispersion GM must equal Mallows")
	}
	if _, err := NewGeneralizedMallows(Identity(3), []float64{2, 0, 0}); err == nil {
		t.Fatal("invalid dispersion accepted")
	}

	pl, err := NewPlackettLuce([]float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p := pl.PairwiseProb(0, 1); math.Abs(p-0.75) > 1e-12 {
		t.Fatalf("PL pairwise = %v, want 0.75", p)
	}
	if _, err := NewPlackettLuce([]float64{0}); err == nil {
		t.Fatal("zero weight accepted")
	}

	// Interface satisfaction through the facade alias.
	var models []RankModel = []RankModel{gm, pl, ml}
	rng := rand.New(rand.NewSource(1))
	for _, mdl := range models {
		if got := mdl.Sample(rng); len(got) != mdl.M() {
			t.Fatalf("sample length %d, want %d", len(got), mdl.M())
		}
	}
}

func TestFacadeAnalytics(t *testing.T) {
	ml, err := NewMallows(Identity(4), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	mdl := ml.Model()

	q, err := PositionDistribution(mdl, 0)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range q {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("position distribution sums to %v", sum)
	}

	rm := RankMarginals(mdl)
	if len(rm) != 4 || math.Abs(rm[0][0]-q[0]) > 1e-12 {
		t.Fatal("RankMarginals disagrees with PositionDistribution")
	}

	pm := PairwiseMatrix(mdl)
	p01, err := PairwiseProb(mdl, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pm[0][1]-p01) > 1e-12 {
		t.Fatal("PairwiseMatrix disagrees with PairwiseProb")
	}

	top, err := TopKProb(mdl, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(top-q[0]) > 1e-12 {
		t.Fatal("TopKProb disagrees with PositionDistribution")
	}

	er, err := ExpectedRank(mdl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if er < 0 || er > 3 {
		t.Fatalf("expected rank %v out of range", er)
	}

	if w, ok := CondorcetWinner(pm); !ok || w != 0 {
		t.Fatalf("Condorcet winner = %v ok=%v, want item 0", w, ok)
	}
	cop := CopelandScores(pm)
	borda := BordaScores(pm)
	if cop[0] != 3 {
		t.Fatalf("Copeland of center head = %v, want 3", cop[0])
	}
	if math.Abs(borda[0]-(3-er)) > 1e-9 {
		t.Fatal("Borda and expected rank inconsistent")
	}

	ek, err := ExpectedKendall(mdl, Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ek-ExpectedDistanceToReference(mdl)) > 1e-9 {
		t.Fatal("ExpectedKendall(sigma) differs from closed form")
	}

	mix, err := NewMixture([]*Mallows{ml}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	mpm := MixturePairwiseMatrix(mix)
	if math.Abs(mpm[0][1]-pm[0][1]) > 1e-12 {
		t.Fatal("single-component mixture pairwise differs")
	}
	mrm := MixtureRankMarginals(mix)
	if math.Abs(mrm[0][0]-rm[0][0]) > 1e-12 {
		t.Fatal("single-component mixture marginals differ")
	}
}

func TestFacadeCountDistributionAndUnion(t *testing.T) {
	d, err := NewCountDistribution([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.PMF[1]-0.5) > 1e-12 {
		t.Fatalf("PMF[1] = %v", d.PMF[1])
	}

	db, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{DB: db, Method: MethodAuto}
	uq, err := ParseUnionQuery(
		`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)` +
			` | P(_, _; c1; c2), C(c1, D, _, _, _, _), C(c2, R, _, _, _, _)`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.EvalUnion(uq)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prob <= 0 || res.Prob > 1 {
		t.Fatalf("union Prob = %v", res.Prob)
	}
	top, _, err := eng.TopKUnion(uq, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 {
		t.Fatalf("top-1 returned %d sessions", len(top))
	}

	pm, err := PopulationPairwise(db, "P")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pm[0][1]+pm[1][0]-1) > 1e-9 {
		t.Fatal("population pairwise not antisymmetric")
	}
	rm, err := PopulationRankMarginals(db, "P")
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range rm[0] {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("population marginals row sums to %v", sum)
	}
}

func TestFacadeLearning(t *testing.T) {
	truth, err := NewMallows(Ranking{2, 0, 3, 1}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	data := make([]Ranking, 600)
	for i := range data {
		data[i] = truth.Sample(rng)
	}
	fit, err := FitMallows(data, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !fit.Model.Sigma.Equal(truth.Sigma) {
		t.Fatalf("center %v, want %v", fit.Model.Sigma, truth.Sigma)
	}
	mixFit, err := FitMixture(data, 1, 4, MixtureConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ll := MixtureLogLikelihood(mixFit.Mixture, data)
	if math.Abs(ll-mixFit.LogLikelihood) > math.Abs(ll)*0.01+1e-6 {
		t.Fatalf("MixtureLogLikelihood %v vs fit %v", ll, mixFit.LogLikelihood)
	}
}

func TestFacadeSolversAgree(t *testing.T) {
	ml, err := NewMallows(Identity(5), 0.4)
	if err != nil {
		t.Fatal(err)
	}
	lab := NewLabeling()
	lab.Add(Item(4), Label(0))
	lab.Add(Item(3), Label(0))
	lab.Add(Item(0), Label(1))
	u := Union{TwoLabelPattern(LabelSet{0}, LabelSet{1})}
	want, err := SolveTwoLabel(ml.Model(), lab, u, SolverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]func(*RIMModel, *Labeling, Union, SolverOptions) (float64, error){
		"auto": SolveAuto, "bipartite": SolveBipartite, "general": SolveGeneral, "relorder": SolveRelOrder,
	} {
		got, err := f(ml.Model(), lab, u, SolverOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("%s = %v, two-label = %v", name, got, want)
		}
	}

	est, err := NewEstimator(ml, lab, u, EstimatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	p, err := est.Estimate(3, 3000, rng, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-want) > 0.05 {
		t.Fatalf("estimator %v, exact %v", p, want)
	}
}

func TestFacadeDatasetShapes(t *testing.T) {
	polls, err := Polls(8, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if polls.M() != 8 {
		t.Fatalf("polls items = %d", polls.M())
	}
	mlens, err := MovieLens(30, 3)
	if err != nil {
		t.Fatal(err)
	}
	if mlens.M() != 30 {
		t.Fatalf("movielens items = %d", mlens.M())
	}
	cr, err := CrowdRank(50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cr.M() != 20 {
		t.Fatalf("crowdrank HIT size = %d, want the paper's 20", cr.M())
	}
	small, err := CrowdRankHIT(50, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if small.M() != 8 {
		t.Fatalf("crowdrank HIT size = %d, want 8", small.M())
	}
	if _, err := CrowdRankHIT(50, 2, 3); err == nil {
		t.Fatal("HIT below minimum size accepted")
	}
}

func TestFacadeAMPAndPartialOrder(t *testing.T) {
	cons := NewPartialOrder()
	cons.Add(Item(2), Item(0))
	amp, err := NewAMP(Identity(3), 0.5, cons)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		tau, logq := amp.Sample(rng)
		if !tau.Prefers(Item(2), Item(0)) {
			t.Fatalf("AMP sample %v violates constraint", tau)
		}
		if logq > 0 {
			t.Fatalf("log-density %v above 0", logq)
		}
		if got, ok := amp.LogDensity(tau); !ok || math.Abs(got-logq) > 1e-9 {
			t.Fatalf("LogDensity %v ok=%v, sampling reported %v", got, ok, logq)
		}
	}
	if d := KendallTau(Identity(3), Ranking{2, 1, 0}); d != 3 {
		t.Fatalf("KendallTau = %d, want 3", d)
	}
	if _, err := NewRIM(Identity(2), [][]float64{{1}, {0.5, 0.5}}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPattern([]PatternNode{{Labels: LabelSet{0}}, {Labels: LabelSet{1}}}, [][2]int{{0, 1}, {1, 0}}); err == nil {
		t.Fatal("cyclic pattern accepted")
	}
}
