// Quickstart: build the paper's Figure 1 polling database, ask the three
// introductory queries (Q0, Q1, Q2), and show direct solver access.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"probpref"
)

func main() {
	db, err := probpref.Figure1()
	if err != nil {
		log.Fatal(err)
	}
	eng := &probpref.Engine{DB: db, Method: probpref.MethodAuto}

	// Q0: does Ann (on 5/5) prefer Trump to both Clinton and Rubio?
	q0, err := probpref.ParseQuery(
		`P(Ann, "5/5"; Trump; Clinton), P(Ann, "5/5"; Trump; Rubio)`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Eval(q0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q0  Pr(Ann prefers Trump to Clinton and Rubio) = %.4f\n", res.Prob)

	// Q1: is a female candidate preferred to a male candidate in any
	// session? (itemwise: tractable)
	q1, err := probpref.ParseQuery(
		`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	if err != nil {
		log.Fatal(err)
	}
	res, err = eng.Eval(q1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q1  Pr(some session prefers F to M)            = %.4f\n", res.Prob)
	fmt.Printf("Q1  expected #sessions satisfying the query    = %.4f\n", res.Count)
	for _, sp := range res.PerSession {
		fmt.Printf("      session %v: %.4f\n", sp.Session.Key, sp.Prob)
	}

	// Q2: a Democrat preferred to a Republican with the same education —
	// the paper's running example of a provably hard (non-itemwise) query.
	// The shared variable e is grounded over {BS, JD}, rewriting Q2 into a
	// union of itemwise queries.
	q2, err := probpref.ParseQuery(
		`P(_, _; c1; c2), C(c1, D, _, _, e, _), C(c2, R, _, _, e, _)`)
	if err != nil {
		log.Fatal(err)
	}
	res, err = eng.Eval(q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q2  Pr(D preferred to R with same edu)         = %.4f\n", res.Prob)

	// Direct solver access: build a labeled Mallows model and a two-label
	// pattern by hand and solve it exactly.
	ml, err := probpref.NewMallows(probpref.Identity(5), 0.4)
	if err != nil {
		log.Fatal(err)
	}
	lab := probpref.NewLabeling()
	lab.Add(probpref.Item(4), probpref.Label(0)) // label 0 on the last item
	lab.Add(probpref.Item(0), probpref.Label(1)) // label 1 on the first item
	u := probpref.Union{probpref.TwoLabelPattern(
		probpref.LabelSet{0}, probpref.LabelSet{1})}
	p, err := probpref.SolveTwoLabel(ml.Model(), lab, u, probpref.SolverOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndirect: Pr(item4 ranked above item0 | MAL(id, 0.4)) = %.6f\n", p)
}
