// Registry walkthrough: load a manifest of named dataset-backed models,
// serve them all from one multi-model service, route queries per model,
// and evict a model while keeping the rest online.
//
// The same manifest drives the daemon: hardqd -manifest examples/registry/manifest.json
//
// Run with: go run ./examples/registry
package main

import (
	"context"
	"fmt"
	"log"

	"probpref"
)

func main() {
	// The manifest names three models over three different dataset
	// builders. "figure1" is preloaded at apply time; the others build
	// lazily on their first query.
	man, err := probpref.LoadManifest("examples/registry/manifest.json")
	if err != nil {
		log.Fatal(err)
	}
	reg := probpref.NewRegistry()
	if err := reg.Apply(man); err != nil {
		log.Fatal(err)
	}
	svc := probpref.NewMultiService(reg, probpref.ServiceConfig{
		Method:    probpref.MethodAuto,
		Workers:   4,
		CacheSize: 4096,
	})

	fmt.Println("catalog at startup:")
	for _, in := range reg.List() {
		fmt.Printf("  %-15s %-10s loaded=%v\n", in.Name, in.Dataset, in.Loaded)
	}

	// Route the same kind of question to two different tenants. The solve
	// cache is shared but namespaced per model, so neither tenant can
	// observe the other's entries.
	ctx := context.Background()
	figQ := `P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`
	pollQ := `P(_, _; l; r), C(l, p, M, _, _, _), C(r, p, F, _, _, _)`

	resF, err := svc.EvalModelCtx(ctx, "figure1", figQ)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("figure1:     Pr(Q|D) = %.6g over %d sessions\n", resF.Prob, len(resF.PerSession))

	resP, err := svc.EvalModelCtx(ctx, "polls-small", pollQ)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("polls-small: Pr(Q|D) = %.6g over %d sessions\n", resP.Prob, len(resP.PerSession))

	// Evict polls-small: the catalog forgets it immediately, figure1 keeps
	// serving.
	if err := reg.Delete("polls-small"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after evicting polls-small:")
	for _, in := range reg.List() {
		fmt.Printf("  %-15s %-10s loaded=%v\n", in.Name, in.Dataset, in.Loaded)
	}
	if _, err := svc.EvalModelCtx(ctx, "polls-small", pollQ); err != nil {
		fmt.Println("polls-small now:", err)
	}
}
