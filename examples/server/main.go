// Server walkthrough: wrap a PPD in the concurrent query service, evaluate
// a batch with cross-query dedup and a shared solve cache, and serve the
// same service over HTTP.
//
// Run with: go run ./examples/server
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"

	"probpref"
)

func main() {
	// A 20-candidate, 100-voter polling database: 100 sessions, many of
	// which share Mallows parameters, so queries overlap heavily.
	db, err := probpref.Polls(20, 100, 1)
	if err != nil {
		log.Fatal(err)
	}
	svc := probpref.NewService(db, probpref.ServiceConfig{
		Method:    probpref.MethodAuto,
		Workers:   4,
		CacheSize: 4096,
	})

	// A batch of three queries, two of them identical. The service grounds
	// every query first, deduplicates the (model, union) inference groups
	// across the whole batch, and solves each distinct group once on a
	// bounded worker pool.
	female := `P(_, _; l; r), C(l, p, F, _, _, _), C(r, p, M, _, _, _)`
	male := `P(_, _; l; r), C(l, p, M, _, _, _), C(r, p, F, _, _, _)`
	br, err := svc.EvalBatch([]string{female, female, male})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("batch of 3 queries (2 identical):")
	for i, res := range br.Results {
		fmt.Printf("  query %d: Pr(Q|D) = %.4f  count = %.2f\n", i+1, res.Prob, res.Count)
	}
	fmt.Printf("  groups: %d distinct of %d instances, solved %d, cache hits %d\n",
		br.Groups, br.Instances, br.Solved, br.CacheHits)

	// Re-running the batch touches no solver at all: every group is now in
	// the process-wide cache.
	br2, err := svc.EvalBatch([]string{female, male})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm batch: solved %d, cache hits %d\n", br2.Solved, br2.CacheHits)

	// Most-Probable-Session through the same cache.
	top, diag, err := svc.TopK(female, 3, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-3 sessions preferring F to M within a party:")
	for i, sp := range top {
		fmt.Printf("  %d. %v  Pr = %.4f\n", i+1, sp.Session.Key, sp.Prob)
	}
	fmt.Printf("  exact solves %d, cache hits %d\n", diag.ExactSolves, diag.CacheHits)

	// The same service serves HTTP; cmd/hardqd runs exactly this handler as
	// a daemon (here an in-process test server keeps the example hermetic).
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/eval?q=" + url.QueryEscape(female))
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("GET /eval over HTTP:\n%s", body)

	st := svc.Stats()
	fmt.Printf("service stats: evals=%d topks=%d batches=%d solves=%d cache hits=%d misses=%d\n",
		st.Evals, st.TopKs, st.Batches, st.Solves, st.Cache.Hits, st.Cache.Misses)
}
