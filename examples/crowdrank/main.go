// CrowdRank: the Figure 15 workload — a chain-shaped hard query joined with
// worker demographics, evaluated over many sessions with identical-request
// grouping.
//
// Run with: go run ./examples/crowdrank
package main

import (
	"fmt"
	"log"
	"time"

	"probpref"
)

func main() {
	// The query (Section 6.4): does the worker prefer a short movie whose
	// lead actor matches their sex to a short movie whose lead actor is
	// around their age, which is in turn preferred to some thriller? The
	// chain m1 > m2 > m3 is not bipartite: this exercises the
	// relative-order solver.
	src := `P(v; m1; m2), P(v; m2; m3), V(v, sex, age), ` +
		`M(m1, _, sex, _, "short"), M(m2, _, _, age, "short"), M(m3, "Thriller", _, _, _)`
	q, err := probpref.ParseQuery(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query:", q)
	fmt.Println()

	// A 10-movie HIT keeps each exact relative-order solve cheap so the
	// grouping effect, not the solver, dominates the timings. Naive
	// (ungrouped) evaluation solves one inference problem per session and
	// grows linearly; it is measured only at the smallest size, as in the
	// paper's Figure 15, where the naive series is capped.
	for _, workers := range []int{50, 200, 800} {
		db, err := probpref.CrowdRankHIT(workers, 10, 15)
		if err != nil {
			log.Fatal(err)
		}

		grouped := &probpref.Engine{DB: db, Method: probpref.MethodRelOrder}
		start := time.Now()
		res, err := grouped.Eval(q)
		if err != nil {
			log.Fatal(err)
		}
		groupedTime := time.Since(start)

		naiveNote := "(not measured)"
		if workers <= 50 {
			naive := &probpref.Engine{DB: db, Method: probpref.MethodRelOrder, DisableGrouping: true}
			start = time.Now()
			if _, err := naive.Eval(q); err != nil {
				log.Fatal(err)
			}
			naiveTime := time.Since(start)
			naiveNote = fmt.Sprintf("%v (%.1fx slower)",
				naiveTime.Round(time.Millisecond), naiveTime.Seconds()/groupedTime.Seconds())
		}

		fmt.Printf("workers=%4d: count(Q) = %8.4f  distinct requests = %2d  grouped %8v  naive %s\n",
			workers, res.Count, res.Solves,
			groupedTime.Round(time.Millisecond), naiveNote)
	}
	fmt.Println("\nnaive evaluation grows linearly with sessions; grouping converges to the")
	fmt.Println("number of distinct (ranking model, demographic) requests — the paper's Figure 15.")
}
