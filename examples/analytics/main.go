// Election analytics: exact marginal inference over the Figure 1 polling
// database — pairwise preference matrices, Condorcet/Copeland/Borda
// summaries, rank marginals, the full distribution of a Count-Session
// query, a union query, and the "beyond RIM" models (Generalized Mallows,
// Plackett-Luce).
//
// Run with: go run ./examples/analytics
package main

import (
	"fmt"
	"log"
	"math/rand"

	"probpref"
)

func main() {
	db, err := probpref.Figure1()
	if err != nil {
		log.Fatal(err)
	}
	polls := db.Prefs["P"]
	m := db.M()

	names := make([]string, m)
	for i := 0; i < m; i++ {
		names[i] = db.ItemKey(probpref.Item(i))
	}

	// Population-level pairwise matrix: the probability that a random voter
	// session prefers candidate a to candidate b, averaged over sessions.
	avg, err := probpref.PopulationPairwise(db, "P")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Pairwise preference probabilities (row preferred to column):")
	fmt.Printf("%-10s", "")
	for _, n := range names {
		fmt.Printf("%10s", n)
	}
	fmt.Println()
	for a := 0; a < m; a++ {
		fmt.Printf("%-10s", names[a])
		for b := 0; b < m; b++ {
			if a == b {
				fmt.Printf("%10s", "-")
			} else {
				fmt.Printf("%10.3f", avg[a][b])
			}
		}
		fmt.Println()
	}

	if w, ok := probpref.CondorcetWinner(avg); ok {
		fmt.Printf("\nExpected Condorcet winner: %s\n", names[w])
	} else {
		fmt.Println("\nNo expected Condorcet winner (preference cycle or tie).")
	}
	cop := probpref.CopelandScores(avg)
	borda := probpref.BordaScores(avg)
	fmt.Println("Copeland / Borda scores:")
	for i := 0; i < m; i++ {
		fmt.Printf("  %-10s Copeland %.1f   Borda %.3f\n", names[i], cop[i], borda[i])
	}

	// Rank marginals for Ann's session: where does each candidate land?
	ann := polls.Sessions.At(0)
	fmt.Printf("\nRank marginals for session (%s, %s):\n", ann.Key[0], ann.Key[1])
	rm := probpref.RankMarginals(ann.Model.Model())
	for i := 0; i < m; i++ {
		fmt.Printf("  %-10s", names[i])
		for p := 0; p < m; p++ {
			fmt.Printf(" P(rank %d)=%.3f", p+1, rm[i][p])
		}
		fmt.Println()
	}
	for i := 0; i < m; i++ {
		top, err := probpref.TopKProb(ann.Model.Model(), probpref.Item(i), 1)
		if err != nil {
			log.Fatal(err)
		}
		if top > 0.5 {
			fmt.Printf("  %s tops Ann's ranking with probability %.3f\n", names[i], top)
		}
	}

	// Count-Session distribution: among the three polled sessions, how many
	// prefer a Democrat to a Republican?
	eng := &probpref.Engine{DB: db, Method: probpref.MethodAuto}
	q, err := probpref.ParseQuery(
		`P(_, _; c1; c2), C(c1, "D", _, _, _, _), C(c2, "R", _, _, _, _)`)
	if err != nil {
		log.Fatal(err)
	}
	dist, err := eng.CountDistribution(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncount(Q): sessions preferring some Democrat to some Republican")
	fmt.Printf("  mean %.3f  stddev %.3f  mode %d  median %d\n",
		dist.Mean(), dist.StdDev(), dist.Mode(), dist.Quantile(0.5))
	for k, p := range dist.PMF {
		fmt.Printf("  Pr(count = %d) = %.4f\n", k, p)
	}
	fmt.Printf("  Pr(count >= 2) = %.4f\n", dist.Tail(2))

	// Union query: a female candidate beats a male one, OR a JD-educated
	// Democrat beats a Republican.
	uq, err := probpref.ParseUnionQuery(
		`P(_, _; c1; c2), C(c1, _, "F", _, _, _), C(c2, _, "M", _, _, _)` +
			` | P(_, _; c1; c2), C(c1, "D", _, _, "JD", _), C(c2, "R", _, _, _, _)`)
	if err != nil {
		log.Fatal(err)
	}
	ru, err := eng.EvalUnion(uq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nUnion query: Pr = %.4f over %d solves\n", ru.Prob, ru.Solves)

	// Beyond RIM: a Generalized Mallows voter (certain about the top of the
	// ballot, uncertain about the bottom) and a Plackett-Luce voter.
	gm, err := probpref.NewGeneralizedMallows(
		ann.Model.Reference(), []float64{0, 0.1, 0.6, 0.9})
	if err != nil {
		log.Fatal(err)
	}
	gmTop, err := probpref.TopKProb(gm.Model(), ann.Model.Reference()[0], 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGeneralized Mallows voter: Pr(%s stays on top) = %.3f (expected swaps %.2f)\n",
		names[ann.Model.Reference()[0]], gmTop, probpref.ExpectedDistanceToReference(gm.Model()))

	pl, err := probpref.NewPlackettLuce([]float64{1, 6, 3, 2})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	fmt.Printf("Plackett-Luce voter: mode %v, Pr(%s first) = %.3f, a sampled ballot: %v\n",
		pl.Mode(), names[1], pl.TopProb(1), pl.Sample(rng))
}
