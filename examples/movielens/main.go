// MovieLens: the Figure 14 workload — a hard conjunctive query over a movie
// catalog whose grounding grows with genre diversity, evaluated with the
// MIS-AMP family of approximate solvers.
//
// Run with: go run ./examples/movielens
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"probpref"
)

func main() {
	// The query (Section 6.3): is Clerks (id 223) preferred to Taxi Driver
	// (id 111), and is some post-1990 movie preferred both to a pre-1990
	// movie of the same genre and to Taxi Driver?
	src := `P(_; 223; 111), P(_; x; 111), P(_; x; y), ` +
		`M(x, _, _, "post", g), M(y, _, _, "pre", g)`
	q, err := probpref.ParseQuery(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query:", q)
	fmt.Println()

	// Larger catalogs (up to 200 movies, as in the paper's Figure 14) are
	// exercised by `go run ./cmd/experiments -fig 14`.
	for _, movies := range []int{40, 80} {
		db, err := probpref.MovieLens(movies, 14)
		if err != nil {
			log.Fatal(err)
		}
		eng := &probpref.Engine{
			DB:     db,
			Method: probpref.MethodMISAdaptive,
			Adaptive: probpref.AdaptiveConfig{
				Samples: 200,
				MaxD:    9,
			},
			Rng: rand.New(rand.NewSource(1)),
		}
		start := time.Now()
		res, err := eng.Eval(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("catalog m=%3d: Pr(Q|D) = %.4f  expected sessions = %.3f  (%d mixture components, %v)\n",
			movies, res.Prob, res.Count, len(res.PerSession), time.Since(start).Round(time.Millisecond))
	}

	fmt.Println("\nper-session detail at m=80 (each session is one Mallows mixture component):")
	db, err := probpref.MovieLens(80, 14)
	if err != nil {
		log.Fatal(err)
	}
	eng := &probpref.Engine{
		DB:     db,
		Method: probpref.MethodMISAdaptive,
		Rng:    rand.New(rand.NewSource(2)),
	}
	res, err := eng.Eval(q)
	if err != nil {
		log.Fatal(err)
	}
	for _, sp := range res.PerSession[:5] {
		fmt.Printf("  component %v: Pr = %.4f\n", sp.Session.Key, sp.Prob)
	}
}
