// Learning: recover a Mallows mixture from observed rankings — the step
// the paper performs with an external mining tool on the MovieLens and
// CrowdRank data — then query the learned model.
//
// A ground-truth 3-component mixture over 8 movies generates 1,500 worker
// rankings; EM (probpref.FitMixture) recovers centers, dispersions and
// weights; the learned components then serve as session models in a
// RIM-PPD, closing the paper's end-to-end pipeline: ratings -> mixture ->
// probabilistic preference database -> hard queries.
//
// Run with: go run ./examples/learning
package main

import (
	"fmt"
	"log"
	"math/rand"

	"probpref"
)

func main() {
	const m = 8 // movies
	truth := []struct {
		sigma probpref.Ranking
		phi   float64
		share float64
	}{
		{probpref.Ranking{0, 1, 2, 3, 4, 5, 6, 7}, 0.20, 0.5},
		{probpref.Ranking{7, 6, 5, 4, 3, 2, 1, 0}, 0.30, 0.3},
		{probpref.Ranking{3, 7, 1, 5, 0, 4, 2, 6}, 0.25, 0.2},
	}

	rng := rand.New(rand.NewSource(42))
	var data []probpref.Ranking
	for _, comp := range truth {
		ml, err := probpref.NewMallows(comp.sigma, comp.phi)
		if err != nil {
			log.Fatal(err)
		}
		n := int(comp.share * 1500)
		for i := 0; i < n; i++ {
			data = append(data, ml.Sample(rng))
		}
	}
	fmt.Printf("generated %d rankings from a 3-component ground-truth mixture\n\n", len(data))

	fit, err := probpref.FitMixture(data, 3, m, probpref.MixtureConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EM converged after %d rounds, log-likelihood %.1f\n", fit.Iterations, fit.LogLikelihood)
	for c, comp := range fit.Mixture.Components {
		fmt.Printf("  component %d: weight %.3f  phi %.3f  center %v\n",
			c, fit.Mixture.Weights[c], comp.Phi, comp.Sigma)
	}
	fmt.Println("\nground truth:")
	for _, comp := range truth {
		fmt.Printf("  weight %.3f  phi %.3f  center %v\n", comp.share, comp.phi, comp.sigma)
	}

	// Single-model fit for comparison: one Mallows cannot explain bimodal
	// data, and the likelihood shows it.
	single, err := probpref.FitMallows(data, nil, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsingle-Mallows fit: phi %.3f, log-likelihood %.1f (mixture wins by %.1f)\n",
		single.Model.Phi, single.LogLikelihood, fit.LogLikelihood-single.LogLikelihood)

	// Use the learned components as session models in a PPD and ask a hard
	// query: is the blockbuster (movie 0) preferred to the arthouse pick
	// (movie 7) and to movie 6?
	movies, err := probpref.NewRelation("M",
		[]string{"id", "kind"},
		[][]string{
			{"m0", "blockbuster"}, {"m1", "drama"}, {"m2", "comedy"}, {"m3", "drama"},
			{"m4", "comedy"}, {"m5", "drama"}, {"m6", "arthouse"}, {"m7", "arthouse"},
		})
	if err != nil {
		log.Fatal(err)
	}
	db, err := probpref.NewDB(movies)
	if err != nil {
		log.Fatal(err)
	}
	pref := &probpref.PrefRelation{
		Name:         "P",
		SessionAttrs: []string{"cluster"},
	}
	var clusters probpref.SessionSlice
	for c, comp := range fit.Mixture.Components {
		clusters = append(clusters, &probpref.Session{
			Key:   []string{fmt.Sprintf("cluster%d", c)},
			Model: comp,
		})
	}
	pref.Sessions = clusters
	if err := db.AddPrefRelation(pref); err != nil {
		log.Fatal(err)
	}
	eng := &probpref.Engine{DB: db, Method: probpref.MethodAuto}
	q, err := probpref.ParseQuery(
		`P(_; b; a), M(b, "blockbuster"), M(a, "arthouse")`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Eval(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPr(some cluster prefers a blockbuster to an arthouse film) = %.4f\n", res.Prob)
	for i, sp := range res.PerSession {
		fmt.Printf("  cluster %d: %.4f\n", i, sp.Prob)
	}
}
