// Polls: election-style preference analysis over the synthetic polling
// database of Section 6.1 — Boolean and Count-Session evaluation with every
// solver, and the Most-Probable-Session query with the upper-bound top-k
// optimization.
//
// Run with: go run ./examples/polls
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"probpref"
)

func main() {
	db, err := probpref.Polls(16, 80, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("polls database: %d candidates, %d poll sessions\n\n",
		db.M(), db.Prefs["P"].Sessions.Len())

	// A hard (non-itemwise) query in the style of Figure 4: is a female
	// candidate with a JD preferred to a male candidate with a BS of the
	// same party? The party join variable p prevents label-pattern
	// reduction; grounding rewrites the query into a union of two-label
	// patterns per session (one per party).
	q, err := probpref.ParseQuery(
		`P(_, _; l; r), C(l, p, F, _, JD, _), C(r, p, M, _, BS, _)`)
	if err != nil {
		log.Fatal(err)
	}

	for _, m := range []struct {
		name   string
		method probpref.Method
	}{
		{"two-label (Alg 3)", probpref.MethodTwoLabel},
		{"bipartite (Alg 4)", probpref.MethodBipartite},
		{"general (I-E)", probpref.MethodGeneral},
		{"MIS-AMP-adaptive", probpref.MethodMISAdaptive},
	} {
		eng := &probpref.Engine{
			DB:     db,
			Method: m.method,
			Adaptive: probpref.AdaptiveConfig{
				Samples: 150,
				MaxD:    7,
			},
			Rng: rand.New(rand.NewSource(1)),
		}
		start := time.Now()
		res, err := eng.Eval(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s Pr = %.4f  count = %8.4f  solves = %3d  (%v)\n",
			m.name, res.Prob, res.Count, res.Solves, time.Since(start).Round(time.Millisecond))
	}

	// Aggregation (the paper's future-work extension): the expected
	// average age of voters whose poll satisfies the query.
	agg, err := (&probpref.Engine{DB: db, Method: probpref.MethodAuto}).Aggregate(q, "V", "age")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexpected satisfying sessions: %.2f, average voter age among them: %.1f\n",
		agg.Count, agg.Avg)

	// Most-Probable-Session: which voters most strongly prefer a
	// same-party male to a same-party female? Compare the naive strategy
	// against the 1-edge and 2-edge upper-bound optimizations.
	fmt.Println("\ntop-3 most supportive sessions:")
	eng := &probpref.Engine{DB: db, Method: probpref.MethodAuto}
	for _, mode := range []struct {
		name  string
		edges int
	}{{"naive", 0}, {"1-edge bounds", 1}, {"2-edge bounds", 2}} {
		start := time.Now()
		top, diag, err := eng.TopK(q, 3, mode.edges)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s evaluated %3d sessions exactly in %v\n",
			mode.name, diag.SessionsEvaluated, time.Since(start).Round(time.Millisecond))
		for i, sp := range top {
			fmt.Printf("      %d. voter %s (poll %s)  Pr = %.4f\n",
				i+1, sp.Session.Key[0], sp.Session.Key[1], sp.Prob)
		}
	}
}
