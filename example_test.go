package probpref_test

import (
	"fmt"
	"log"

	"probpref"
)

// Evaluate the paper's hard query Q2 — a Democrat preferred to a Republican
// with the same education — over the Figure 1 polling database.
func Example() {
	db, err := probpref.Figure1()
	if err != nil {
		log.Fatal(err)
	}
	eng := &probpref.Engine{DB: db, Method: probpref.MethodAuto}
	q, err := probpref.ParseQuery(
		`P(_, _; c1; c2), C(c1, D, _, _, e, _), C(c2, R, _, _, e, _)`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Eval(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pr(Q|D) = %.4f\n", res.Prob)
	fmt.Printf("count(Q) = %.4f\n", res.Count)
	// Output:
	// Pr(Q|D) = 0.9992
	// count(Q) = 2.1351
}

// Solve a pattern-union inference problem directly: the probability that a
// random ranking from MAL(<0..4>, 0.4) places the last reference item above
// the first.
func ExampleSolveTwoLabel() {
	ml, err := probpref.NewMallows(probpref.Identity(5), 0.4)
	if err != nil {
		log.Fatal(err)
	}
	lab := probpref.NewLabeling()
	lab.Add(probpref.Item(4), probpref.Label(0))
	lab.Add(probpref.Item(0), probpref.Label(1))
	u := probpref.Union{probpref.TwoLabelPattern(probpref.LabelSet{0}, probpref.LabelSet{1})}
	p, err := probpref.SolveTwoLabel(ml.Model(), lab, u, probpref.SolverOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.6f\n", p)
	// Output:
	// 0.053361
}

// Ask for the sessions most likely to satisfy a query, using the
// upper-bound top-k optimization.
func ExampleEngine_TopK() {
	db, err := probpref.Figure1()
	if err != nil {
		log.Fatal(err)
	}
	eng := &probpref.Engine{DB: db, Method: probpref.MethodAuto}
	q, err := probpref.ParseQuery(
		`P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`)
	if err != nil {
		log.Fatal(err)
	}
	top, _, err := eng.TopK(q, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %.4f\n", top[0].Session.Key[0], top[0].Prob)
	// Output:
	// Ann: 0.9809
}

// Explain a query without evaluating it.
func ExampleEngine_Explain() {
	db, err := probpref.Figure1()
	if err != nil {
		log.Fatal(err)
	}
	eng := &probpref.Engine{DB: db}
	q, err := probpref.ParseQuery(
		`P(_, _; c1; c2), C(c1, D, _, _, e, _), C(c2, R, _, _, e, _)`)
	if err != nil {
		log.Fatal(err)
	}
	ex, err := eng.Explain(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ex.Itemwise, ex.GroundVars, ex.Recommended)
	// Output:
	// false [e] two-label
}

// Aggregate a session attribute over satisfying sessions: the expected
// average age of voters who prefer a Republican to a Democrat.
func ExampleEngine_Aggregate() {
	db, err := probpref.Figure1()
	if err != nil {
		log.Fatal(err)
	}
	eng := &probpref.Engine{DB: db, Method: probpref.MethodAuto}
	q, err := probpref.ParseQuery(
		`P(_, _; c1; c2), C(c1, R, _, _, _, _), C(c2, D, _, _, _, _)`)
	if err != nil {
		log.Fatal(err)
	}
	agg, err := eng.Aggregate(q, "V", "age")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expected satisfying sessions: %.3f, average age: %.1f\n", agg.Count, agg.Avg)
	// Output:
	// expected satisfying sessions: 1.877, average age: 34.0
}
