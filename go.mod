module probpref

go 1.24
