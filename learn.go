package probpref

import (
	"probpref/internal/learn"
	"probpref/internal/rank"
)

// Learning: fitting Mallows models and mixtures to observed rankings (the
// step the paper delegates to the external miner of [26]).
type (
	// MallowsFit is a fitted single Mallows model with diagnostics.
	MallowsFit = learn.Fit
	// MixtureFit is a fitted Mallows mixture with EM diagnostics.
	MixtureFit = learn.MixtureFit
	// MixtureConfig tunes FitMixture.
	MixtureConfig = learn.MixtureConfig
)

// FitMallows fits a single Mallows model to rankings over m items: weighted
// Kemeny center search plus the exact exponential-family MLE for the
// dispersion. weights may be nil for uniform.
func FitMallows(data []Ranking, weights []float64, m int) (*MallowsFit, error) {
	return learn.FitMallows(toRank(data), weights, m)
}

// FitMixture fits a k-component Mallows mixture by EM.
func FitMixture(data []Ranking, k, m int, cfg MixtureConfig) (*MixtureFit, error) {
	return learn.FitMixture(toRank(data), k, m, cfg)
}

// MixtureLogLikelihood returns the log-likelihood of rankings under a
// mixture.
func MixtureLogLikelihood(mix *Mixture, data []Ranking) float64 {
	return learn.LogLikelihood(mix, toRank(data))
}

func toRank(data []Ranking) []rank.Ranking {
	out := make([]rank.Ranking, len(data))
	for i, r := range data {
		out[i] = rank.Ranking(r)
	}
	return out
}
