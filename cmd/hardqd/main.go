// Command hardqd serves hard queries over RIM-PPDs as an HTTP/JSON daemon:
// it loads a catalog of models — either one of the paper's datasets
// (-dataset, served as model "default") or a whole manifest of named
// dataset-backed models (-manifest) — wraps it in the concurrent query
// service of internal/server (shared solve cache namespaced per model,
// batch dedup, bounded worker pool), and exposes:
//
//	POST   /v1/query              unified query endpoint: one typed request
//	                              (kind: bool | count | topk | aggregate |
//	                              countdist) or a {"requests": [...]} batch,
//	                              NDJSON streaming of topk rows via "stream"
//	POST   /v1/sessions           append sessions to a model's p-relation;
//	                              invalidates the model's cache namespaces and,
//	                              with -snapshot-dir, persists the growth
//	GET    /eval?q=Q[&sessions=1][&model=M]  evaluate one query (legacy)
//	POST   /eval                  {"queries": [...], "model": M} batch with dedup (legacy)
//	GET    /topk?q=Q&k=K&bound=B[&model=M]   Most-Probable-Session (legacy)
//	POST   /topk                  {"queries": [{"query","k","bound"}, ...], "model": M} (legacy)
//	GET    /models                list the model catalog
//	POST   /models                register a model at runtime
//	GET    /models/{name}         one catalog row
//	DELETE /models/{name}         evict a model (in-flight queries finish first)
//	GET    /stats                 service, catalog and cache statistics
//	GET    /healthz               liveness probe
//
// Usage examples:
//
//	hardqd -dataset figure1 -addr :8080
//	hardqd -manifest examples/registry/manifest.json -cache 65536 -parallel 8
//	hardqd -dataset polls -voters 500 -snapshot-dir /var/lib/hardqd
//	curl -d '{"kind":"bool","query":"P(_,_;a;b),C(a,_,F,_,_,_),C(b,_,M,_,_,_)"}' localhost:8080/v1/query
//	curl -d '{"kind":"topk","query":"...","k":3,"stream":true}' localhost:8080/v1/query
//	curl 'localhost:8080/eval?q=P(_,_;a;b),C(a,_,F,_,_,_),C(b,_,M,_,_,_)'
//	curl -d '{"queries":["...","..."],"model":"polls-small"}' localhost:8080/eval
//	curl localhost:8080/models
//
// See docs/API.md for the full endpoint reference and docs/ARCHITECTURE.md
// for how the daemon, service, registry and engine layers fit together.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"probpref/internal/dataset"
	"probpref/internal/ppd"
	"probpref/internal/registry"
	"probpref/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hardqd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	svc, addr, err := setup(args, out)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "listening on %s\n", ln.Addr())
	srv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
	}
	return srv.Serve(ln)
}

// setup parses flags, builds the dataset and wraps it in a Service; split
// from run so tests can drive the handler without binding a port.
func setup(args []string, out io.Writer) (*server.Service, string, error) {
	fs := flag.NewFlagSet("hardqd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address")
		ds       = fs.String("dataset", "figure1", "dataset: "+strings.Join(dataset.Names(), " | ")+" (served as model \"default\")")
		manifest = fs.String("manifest", "", "model manifest file; serves every named model of the catalog (overrides -dataset)")
		snapDir  = fs.String("snapshot-dir", "", "directory of columnar model snapshots (<model>.ppds): models cold-start from their snapshot when present, and generator builds and session ingests persist back")
		method   = fs.String("method", "auto", "solver: "+strings.Join(ppd.MethodNames(), " | "))
		cache    = fs.Int("cache", server.DefaultCacheSize, "solve-cache capacity in entries (0 disables); keys are namespaced per model")
		par      = fs.Int("parallel", 4, "worker goroutines for batch fan-out and group solving")
		seed     = fs.Int64("seed", 1, "generator and sampler seed")
		cands    = fs.Int("candidates", 20, "polls: number of candidates")
		voters   = fs.Int("voters", 100, "polls: number of voters")
		movies   = fs.Int("movies", 120, "movielens: catalog size")
		workers  = fs.Int("workers", 500, "crowdrank: number of workers")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return nil, "", err
	}

	m, err := ppd.ParseMethod(*method)
	if err != nil {
		return nil, "", err
	}
	size := *cache
	if size <= 0 {
		size = -1 // flag semantics: 0 (or negative) disables, matching hardq
	}
	cfg := server.Config{
		Method:    m,
		Workers:   *par,
		CacheSize: size,
		Seed:      *seed,
	}

	if *snapDir != "" {
		if err := os.MkdirAll(*snapDir, 0o755); err != nil {
			return nil, "", err
		}
	}
	var svc *server.Service
	if *manifest != "" {
		// Dataset-generator flags would be silently overridden by the
		// manifest specs; reject the combination. (-seed stays legal: it
		// also seeds the samplers via Config.Seed.)
		var conflict []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "dataset", "candidates", "voters", "movies", "workers":
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return nil, "", fmt.Errorf("%s cannot be combined with -manifest: dataset parameters come from the manifest", strings.Join(conflict, ", "))
		}
		man, err := registry.LoadManifest(*manifest)
		if err != nil {
			return nil, "", err
		}
		reg := registry.New()
		reg.SetSnapshotDir(*snapDir)
		if err := reg.Apply(man); err != nil {
			return nil, "", err
		}
		svc = server.NewMulti(reg, cfg)
		fmt.Fprintf(out, "manifest: %s (%d models)\n", *manifest, reg.Len())
		for _, in := range reg.List() {
			if in.Loaded {
				fmt.Fprintf(out, "  %-14s %-10s loaded (m=%d items, %d sessions)\n", in.Name, in.Dataset, in.Items, in.Sessions)
			} else {
				fmt.Fprintf(out, "  %-14s %-10s lazy\n", in.Name, in.Dataset)
			}
		}
	} else {
		// The single dataset is served through the same registry build path
		// as manifest models, so -snapshot-dir restores it from
		// default.ppds when present and persists generator builds and
		// ingests back.
		reg := registry.New()
		reg.SetSnapshotDir(*snapDir)
		if err := reg.Register(registry.Spec{
			Name: server.DefaultModel, Dataset: *ds, Seed: *seed,
			Candidates: *cands, Voters: *voters, Movies: *movies, Workers: *workers,
			Preload: true,
		}); err != nil {
			return nil, "", err
		}
		svc = server.NewMulti(reg, cfg)
		in, err := reg.Lookup(server.DefaultModel)
		if err != nil {
			return nil, "", err
		}
		fmt.Fprintf(out, "dataset : %s (m=%d items, %d sessions)\n", *ds, in.Items, in.Sessions)
	}
	fmt.Fprintf(out, "method  : %s\n", m)
	if c := svc.Cache(); c != nil {
		fmt.Fprintf(out, "cache   : %d entries capacity\n", c.Stats().Capacity)
	} else {
		fmt.Fprintf(out, "cache   : disabled\n")
	}
	return svc, *addr, nil
}
