// Command hardqd serves hard queries over RIM-PPDs as an HTTP/JSON daemon:
// it loads a catalog of models — either one of the paper's datasets
// (-dataset, served as model "default") or a whole manifest of named
// dataset-backed models (-manifest) — wraps it in the concurrent query
// service of internal/server (shared solve cache namespaced per model,
// batch dedup, bounded worker pool), and exposes:
//
//	POST   /v1/query              unified query endpoint: one typed request
//	                              (kind: bool | count | topk | aggregate |
//	                              countdist) or a {"requests": [...]} batch,
//	                              NDJSON streaming of topk rows via "stream"
//	POST   /v1/sessions           append sessions to a model's p-relation;
//	                              invalidates the model's cache namespaces and,
//	                              with -snapshot-dir, persists the growth
//	GET    /eval?q=Q[&sessions=1][&model=M]  evaluate one query (legacy)
//	POST   /eval                  {"queries": [...], "model": M} batch with dedup (legacy)
//	GET    /topk?q=Q&k=K&bound=B[&model=M]   Most-Probable-Session (legacy)
//	POST   /topk                  {"queries": [{"query","k","bound"}, ...], "model": M} (legacy)
//	GET    /models                list the model catalog
//	POST   /models                register a model at runtime
//	GET    /models/{name}         one catalog row
//	DELETE /models/{name}         evict a model (in-flight queries finish first)
//	GET    /stats                 service, catalog and cache statistics
//	GET    /healthz               liveness probe
//
// The daemon also plays the two roles of the sharded serving tier
// (internal/cluster): -shard serves only the listed contiguous session-range
// partitions of each model (as models "<name>--p<i>"), and -coordinator runs
// the fan-out/merge front end over a set of shards instead of serving local
// models — same /v1/query wire format, byte-identical answers, plus the
// /cluster/* management endpoints.
//
// Usage examples:
//
//	hardqd -dataset figure1 -addr :8080
//	hardqd -manifest examples/registry/manifest.json -cache 65536 -parallel 8
//	hardqd -dataset polls -voters 500 -snapshot-dir /var/lib/hardqd
//	hardqd -dataset polls -voters 500 -shard 0,2/4 -addr :8081
//	hardqd -coordinator "s0=http://localhost:8081,s1=http://localhost:8082" -partitions 4
//	curl -d '{"kind":"bool","query":"P(_,_;a;b),C(a,_,F,_,_,_),C(b,_,M,_,_,_)"}' localhost:8080/v1/query
//	curl -d '{"kind":"topk","query":"...","k":3,"stream":true}' localhost:8080/v1/query
//	curl 'localhost:8080/eval?q=P(_,_;a;b),C(a,_,F,_,_,_),C(b,_,M,_,_,_)'
//	curl -d '{"queries":["...","..."],"model":"polls-small"}' localhost:8080/eval
//	curl localhost:8080/models
//
// See docs/API.md for the full endpoint reference and docs/ARCHITECTURE.md
// for how the daemon, service, registry, cluster and engine layers fit
// together.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"probpref/internal/cluster"
	"probpref/internal/dataset"
	"probpref/internal/ppd"
	"probpref/internal/registry"
	"probpref/internal/server"
	"probpref/internal/wal"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hardqd:", err)
		os.Exit(1)
	}
}

// daemon is a configured hardqd ready to serve: the handler for its role
// plus the durability state the graceful-shutdown path must flush. Exactly
// one of reg/cl is non-nil (model-serving roles vs coordinator).
type daemon struct {
	handler http.Handler
	addr    string
	// drain bounds http.Server.Shutdown: in-flight queries and NDJSON
	// streams get this long to finish before connections are cut.
	drain time.Duration
	reg   *registry.Registry   // model catalog (nil in the coordinator role)
	wlog  *wal.Log             // ingest WAL (nil without -wal-dir)
	cl    *cluster.Coordinator // fan-out front end (nil unless -coordinator)
}

func run(args []string, out io.Writer) error {
	d, err := setup(args, out)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", d.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "listening on %s\n", ln.Addr())
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	return serve(d, ln, sigc, out)
}

// serve runs the HTTP server until it fails or a signal arrives, then walks
// the drain ladder: stop accepting connections, let in-flight requests and
// streams finish (bounded by -drain-timeout), write a final snapshot
// checkpoint, compact and close the WAL. Split from run so shutdown tests
// can deliver signals on a plain channel.
func serve(d *daemon, ln net.Listener, sigc <-chan os.Signal, out io.Writer) error {
	srv := &http.Server{
		Handler:           d.handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(out, "received %v, draining (timeout %s)\n", sig, d.drain)
	}
	ctx, cancel := context.WithTimeout(context.Background(), d.drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		// Deadline passed with requests still running; cut them off rather
		// than hang shutdown. Durability is unaffected: acked ingests are
		// already in the WAL.
		fmt.Fprintf(out, "drain timed out, closing %v\n", err)
		srv.Close()
	}
	<-errc // Serve has returned ErrServerClosed by now
	return d.shutdown(out)
}

// shutdown flushes durability state after the listener is closed: a final
// snapshot checkpoint (which compacts the WAL behind it) and a WAL close.
// Checkpoint failures are reported but not fatal — the closed WAL still
// holds every acked batch for the next start's replay.
func (d *daemon) shutdown(out io.Writer) error {
	var firstErr error
	if d.cl != nil {
		d.cl.Close()
	}
	if d.reg != nil && d.wlog != nil {
		if err := d.reg.Checkpoint(); err != nil {
			fmt.Fprintf(out, "checkpoint: %v (WAL retains the batches)\n", err)
		}
	}
	if d.wlog != nil {
		if err := d.wlog.Close(); err != nil {
			firstErr = err
		}
	}
	fmt.Fprintln(out, "shutdown complete")
	return firstErr
}

// setup parses flags and builds the daemon for its role — a model-serving
// Service (whole models or, with -shard, partition models) or a cluster
// Coordinator (-coordinator); split from run so tests can drive the handler
// without binding a port.
func setup(args []string, out io.Writer) (*daemon, error) {
	fs := flag.NewFlagSet("hardqd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address")
		ds       = fs.String("dataset", "figure1", "dataset: "+strings.Join(dataset.Names(), " | ")+" (served as model \"default\")")
		manifest = fs.String("manifest", "", "model manifest file; serves every named model of the catalog (overrides -dataset)")
		snapDir  = fs.String("snapshot-dir", "", "directory of columnar model snapshots (<model>.ppds): models cold-start from their snapshot when present, and generator builds and session ingests persist back")
		method   = fs.String("method", "auto", "solver: "+strings.Join(ppd.MethodNames(), " | "))
		cache    = fs.Int("cache", server.DefaultCacheSize, "solve-cache capacity in entries (0 disables); keys are namespaced per model")
		par      = fs.Int("parallel", 4, "worker goroutines for batch fan-out and group solving")
		seed     = fs.Int64("seed", 1, "generator and sampler seed")
		cands    = fs.Int("candidates", 20, "polls: number of candidates")
		voters   = fs.Int("voters", 100, "polls: number of voters")
		movies   = fs.Int("movies", 120, "movielens: catalog size")
		workers  = fs.Int("workers", 500, "crowdrank: number of workers")

		walDir  = fs.String("wal-dir", "", "write-ahead-log directory: ingest batches are logged and fsynced before they are acknowledged, and replayed over snapshots on startup")
		walSync = fs.String("wal-sync", "always", "WAL fsync policy: always | interval | never (requires -wal-dir)")
		maxInFl = fs.Int("max-inflight", server.DefaultMaxInFlight, "admitted query/ingest requests running at once; one queue of the same depth waits behind them, the rest are shed with 503 (negative disables admission control)")
		maxQ    = fs.Int("max-queue", server.DefaultMaxQueue, "requests waiting for an admission slot before shedding (negative: shed as soon as all slots are busy)")
		drain   = fs.Duration("drain-timeout", 15*time.Second, "graceful-shutdown budget for in-flight requests and streams after SIGINT/SIGTERM")

		shardSpec = fs.String("shard", "", "serve as a cluster shard: \"i[,j...]/n\" lists the contiguous session-range partitions (of n) this shard holds; each model is served as \"<model>--p<i>\"")
		coord     = fs.String("coordinator", "", "run as the cluster coordinator over comma-separated name=url shards: /v1/query fans out per partition and merges (no local models)")
		parts     = fs.Int("partitions", 0, "coordinator: session-range partitions per model (default: shard count)")
		hedge     = fs.Duration("hedge-after", cluster.DefaultHedgeAfter, "coordinator: hedge a slow partition fetch to the replica after this delay (adapts to the shard's latency p95 once warmed)")
		probe     = fs.Duration("probe-every", 2*time.Second, "coordinator: background shard health-probe period (0 disables probing)")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	size := *cache
	if size <= 0 {
		size = -1 // flag semantics: 0 (or negative) disables, matching hardq
	}

	if *coord != "" {
		// Everything that shapes local model serving is meaningless on the
		// coordinator, which holds no models; reject it rather than ignore.
		var conflict []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "dataset", "manifest", "snapshot-dir", "method", "parallel",
				"seed", "candidates", "voters", "movies", "workers", "shard",
				"wal-dir", "wal-sync", "max-inflight", "max-queue":
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return nil, fmt.Errorf("%s cannot be combined with -coordinator: the coordinator serves no local models", strings.Join(conflict, ", "))
		}
		shards, err := parseShards(*coord)
		if err != nil {
			return nil, err
		}
		cl, err := cluster.New(shards, cluster.Config{
			Partitions: *parts,
			HedgeAfter: *hedge,
			CacheSize:  size,
			ProbeEvery: *probe,
		})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "coordinator: %d shards, %d partitions per model\n", len(shards), cl.Partitions())
		for _, sc := range shards {
			fmt.Fprintf(out, "  %-14s %s\n", sc.Name, sc.URL)
		}
		if size > 0 {
			fmt.Fprintf(out, "cache   : %d merged results capacity\n", size)
		} else {
			fmt.Fprintf(out, "cache   : disabled\n")
		}
		return &daemon{handler: cl.Handler(), addr: *addr, drain: *drain, cl: cl}, nil
	}
	if *parts != 0 || *hedge != cluster.DefaultHedgeAfter {
		return nil, fmt.Errorf("-partitions and -hedge-after require -coordinator")
	}

	m, err := ppd.ParseMethod(*method)
	if err != nil {
		return nil, err
	}
	cfg := server.Config{
		Method:      m,
		Workers:     *par,
		CacheSize:   size,
		Seed:        *seed,
		MaxInFlight: *maxInFl,
		MaxQueue:    *maxQ,
	}
	var shardParts []int
	shardTotal := 0
	if *shardSpec != "" {
		if shardParts, shardTotal, err = parseShardSpec(*shardSpec); err != nil {
			return nil, err
		}
	}

	if *snapDir != "" {
		if err := os.MkdirAll(*snapDir, 0o755); err != nil {
			return nil, err
		}
	}
	var wlog *wal.Log
	if *walDir != "" {
		pol, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			return nil, err
		}
		if wlog, err = wal.Open(*walDir, wal.Options{Sync: pol}); err != nil {
			return nil, err
		}
		if n := wlog.TornRepairs(); n > 0 {
			fmt.Fprintf(out, "wal     : repaired %d torn segment tail(s)\n", n)
		}
	} else if walSet(fs) {
		return nil, fmt.Errorf("-wal-sync requires -wal-dir")
	}
	var svc *server.Service
	if *manifest != "" {
		// Dataset-generator flags would be silently overridden by the
		// manifest specs; reject the combination. (-seed stays legal: it
		// also seeds the samplers via Config.Seed.)
		var conflict []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "dataset", "candidates", "voters", "movies", "workers":
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return nil, fmt.Errorf("%s cannot be combined with -manifest: dataset parameters come from the manifest", strings.Join(conflict, ", "))
		}
		man, err := registry.LoadManifest(*manifest)
		if err != nil {
			return nil, err
		}
		if shardTotal > 0 {
			man = partitionManifest(man, shardParts, shardTotal)
		}
		reg, err := newRegistry(*snapDir, wlog)
		if err != nil {
			return nil, err
		}
		if err := reg.Apply(man); err != nil {
			return nil, err
		}
		svc = server.NewMulti(reg, cfg)
		fmt.Fprintf(out, "manifest: %s (%d models)\n", *manifest, reg.Len())
		for _, in := range reg.List() {
			if in.Loaded {
				fmt.Fprintf(out, "  %-14s %-10s loaded (m=%d items, %d sessions)\n", in.Name, in.Dataset, in.Items, in.Sessions)
			} else {
				fmt.Fprintf(out, "  %-14s %-10s lazy\n", in.Name, in.Dataset)
			}
		}
	} else {
		// The single dataset is served through the same registry build path
		// as manifest models, so -snapshot-dir restores it from
		// default.ppds when present and persists generator builds and
		// ingests back.
		reg, err := newRegistry(*snapDir, wlog)
		if err != nil {
			return nil, err
		}
		base := registry.Spec{
			Name: server.DefaultModel, Dataset: *ds, Seed: *seed,
			Candidates: *cands, Voters: *voters, Movies: *movies, Workers: *workers,
			Preload: true,
		}
		for _, spec := range partitionSpecs(base, shardParts, shardTotal) {
			if err := reg.Register(spec); err != nil {
				return nil, err
			}
		}
		svc = server.NewMulti(reg, cfg)
		if shardTotal > 0 {
			fmt.Fprintf(out, "shard   : dataset %s split %d ways\n", *ds, shardTotal)
			for _, in := range reg.List() {
				fmt.Fprintf(out, "  %-14s (m=%d items, %d sessions)\n", in.Name, in.Items, in.Sessions)
			}
		} else {
			in, err := reg.Lookup(server.DefaultModel)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(out, "dataset : %s (m=%d items, %d sessions)\n", *ds, in.Items, in.Sessions)
		}
	}
	fmt.Fprintf(out, "method  : %s\n", m)
	if c := svc.Cache(); c != nil {
		fmt.Fprintf(out, "cache   : %d entries capacity\n", c.Stats().Capacity)
	} else {
		fmt.Fprintf(out, "cache   : disabled\n")
	}
	if wlog != nil {
		fmt.Fprintf(out, "wal     : %s (sync %s, last seq %d)\n", *walDir, *walSync, wlog.LastSeq())
	}
	return &daemon{handler: svc.Handler(), addr: *addr, drain: *drain, reg: svc.Registry(), wlog: wlog}, nil
}

// walSet reports whether -wal-sync was given explicitly, so a policy
// without a directory fails loudly instead of being ignored.
func walSet(fs *flag.FlagSet) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "wal-sync" {
			set = true
		}
	})
	return set
}

// newRegistry builds the model registry shared by the -dataset and
// -manifest roles: snapshots in snapDir, WAL replay and compaction against
// wlog, operational messages (snapshot failures, compaction errors) on the
// process log.
func newRegistry(snapDir string, wlog *wal.Log) (*registry.Registry, error) {
	reg := registry.New()
	reg.SetSnapshotDir(snapDir)
	reg.SetLogf(log.Printf)
	if wlog != nil {
		if err := reg.SetWAL(wlog); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// parseShards parses the -coordinator shard list: comma-separated name=url.
func parseShards(s string) ([]cluster.ShardConfig, error) {
	var out []cluster.ShardConfig
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad shard %q (want name=url)", part)
		}
		out = append(out, cluster.ShardConfig{Name: name, URL: url})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-coordinator needs at least one name=url shard")
	}
	return out, nil
}

// parseShardSpec parses the -shard value "i[,j...]/n" into the partition
// indexes this shard holds and the total partition count.
func parseShardSpec(s string) (parts []int, total int, err error) {
	list, tot, ok := strings.Cut(s, "/")
	if !ok {
		return nil, 0, fmt.Errorf("bad -shard %q (want \"i[,j...]/n\", e.g. \"0,2/4\")", s)
	}
	if total, err = strconv.Atoi(tot); err != nil || total < 1 {
		return nil, 0, fmt.Errorf("bad -shard %q: total partitions %q must be a positive integer", s, tot)
	}
	seen := make(map[int]bool)
	for _, f := range strings.Split(list, ",") {
		i, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || i < 0 || i >= total {
			return nil, 0, fmt.Errorf("bad -shard %q: partition %q must be in [0, %d)", s, f, total)
		}
		if seen[i] {
			return nil, 0, fmt.Errorf("bad -shard %q: partition %d listed twice", s, i)
		}
		seen[i] = true
		parts = append(parts, i)
	}
	return parts, total, nil
}

// partitionSpecs expands a model spec into one spec per held partition
// (named by cluster.PartitionModel); with no shard spec it returns the base
// spec unchanged.
func partitionSpecs(base registry.Spec, parts []int, total int) []registry.Spec {
	if total == 0 {
		return []registry.Spec{base}
	}
	out := make([]registry.Spec, 0, len(parts))
	for _, p := range parts {
		spec := base
		spec.Name = cluster.PartitionModel(base.Name, p)
		spec.Partition = p
		spec.Partitions = total
		out = append(out, spec)
	}
	return out
}

// partitionManifest expands every model of a manifest into the held
// partitions, mirroring partitionSpecs.
func partitionManifest(man *registry.Manifest, parts []int, total int) *registry.Manifest {
	out := &registry.Manifest{}
	for _, spec := range man.Models {
		out.Models = append(out.Models, partitionSpecs(spec, parts, total)...)
	}
	return out
}
