package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"
)

// Lifecycle tests: SIGINT/SIGTERM walks the drain ladder — stop accepting,
// finish in-flight requests and NDJSON streams, checkpoint, close the WAL —
// and a restart over the same directories recovers every acked ingest.
// serve takes the signal channel as a parameter precisely so these tests
// can deliver signals without touching the process signal mask.

// startDaemon runs a daemon built by setup on an ephemeral port and
// returns its base URL, the signal channel, the serve error channel and
// the banner buffer.
func startDaemon(t *testing.T, args ...string) (string, chan os.Signal, chan error, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	d, err := setup(args, &buf)
	if err != nil {
		t.Fatalf("setup(%v): %v\n%s", args, err, buf.String())
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sigc := make(chan os.Signal, 1)
	errc := make(chan error, 1)
	go func() { errc <- serve(d, ln, sigc, &buf) }()
	return "http://" + ln.Addr().String(), sigc, errc, &buf
}

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestDrainWaitsForInFlightThenRecovers is the end-to-end lifecycle check:
// a request provably in flight when the signal lands (its body half
// written over a raw connection) must complete with a 200, new
// connections must be refused during the drain, serve must exit cleanly,
// and a restarted daemon over the same WAL and snapshot directories must
// serve the acked ingest.
func TestDrainWaitsForInFlightThenRecovers(t *testing.T) {
	baseline := runtime.NumGoroutine()
	walDir := t.TempDir() + "/wal"
	snapDir := t.TempDir()
	args := []string{
		"-dataset", "figure1", "-wal-dir", walDir, "-snapshot-dir", snapDir,
		"-drain-timeout", "10s",
	}
	base, sigc, errc, buf := startDaemon(t, args...)

	if code, b := postJSON(t, base+"/v1/sessions",
		`{"pref":"P","sessions":[{"key":["Eve","7/7"],"sigma":[0,1,2,3],"phi":0.4}]}`); code != 200 {
		t.Fatalf("ingest: status %d\n%s", code, b)
	}

	// A query whose body is only half delivered: active from the server's
	// point of view, and provably un-finishable until we send the rest.
	conn, err := net.Dial("tcp", strings.TrimPrefix(base, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	reqBody := fmt.Sprintf(`{"kind":"bool","query":%q}`, demoQuery)
	head := fmt.Sprintf("POST /v1/query HTTP/1.1\r\nHost: h\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n", len(reqBody))
	if _, err := conn.Write([]byte(head + reqBody[:4])); err != nil {
		t.Fatal(err)
	}
	// Give the server a beat to read the partial request before the signal.
	time.Sleep(50 * time.Millisecond)

	sigc <- syscall.SIGTERM

	// The listener closes first: new connections are refused while the
	// in-flight request is still pending.
	refused := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		c, err := net.Dial("tcp", strings.TrimPrefix(base, "http://"))
		if err != nil {
			refused = true
			break
		}
		c.Close()
		time.Sleep(5 * time.Millisecond)
	}
	if !refused {
		t.Fatal("new connections still accepted during drain")
	}

	// Complete the pinned request; the drain must have waited for it.
	if _, err := conn.Write([]byte(reqBody[4:])); err != nil {
		t.Fatalf("finishing in-flight request: %v", err)
	}
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatalf("in-flight request cut off during drain: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !bytes.Contains(b, []byte(`"prob"`)) {
		t.Fatalf("in-flight request: status %d\n%s", resp.StatusCode, b)
	}

	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve never returned after drain")
	}
	out := buf.String()
	for _, want := range []string{"draining", "shutdown complete"} {
		if !strings.Contains(out, want) {
			t.Errorf("shutdown log missing %q:\n%s", want, out)
		}
	}

	// No goroutines left behind by the daemon (workers, flush loops,
	// connection handlers). Allow the runtime a moment to reap.
	leaked := 0
	for deadline := time.Now().Add(5 * time.Second); ; {
		leaked = runtime.NumGoroutine() - baseline
		if leaked <= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if leaked > 2 {
		buf := make([]byte, 1<<16)
		t.Errorf("%d goroutines leaked past shutdown:\n%s", leaked, buf[:runtime.Stack(buf, true)])
	}

	// Restart over the same directories: the acked ingest must be there.
	base2, sigc2, errc2, _ := startDaemon(t, args...)
	code, b2 := postJSON(t, base2+"/v1/query",
		fmt.Sprintf(`{"kind":"topk","query":%q,"k":10}`, demoQuery))
	if code != 200 {
		t.Fatalf("query after restart: status %d\n%s", code, b2)
	}
	var vr struct {
		Result struct {
			Top []json.RawMessage `json:"top"`
		} `json:"result"`
	}
	if err := json.Unmarshal(b2, &vr); err != nil {
		t.Fatal(err)
	}
	if len(vr.Result.Top) != 4 {
		t.Fatalf("restarted daemon serves %d sessions, want 4 (ingest lost)\n%s", len(vr.Result.Top), b2)
	}
	sigc2 <- syscall.SIGTERM
	if err := <-errc2; err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestDrainCompletesStream opens a /v1/query NDJSON stream, signals after
// the first line, and requires the stream to run to completion — every
// row plus clean termination — instead of being cut mid-body.
func TestDrainCompletesStream(t *testing.T) {
	base, sigc, errc, _ := startDaemon(t, "-dataset", "figure1", "-drain-timeout", "10s")
	body := fmt.Sprintf(`{"kind":"topk","query":%q,"k":10,"stream":true}`, demoQuery)
	resp, err := http.Post(base+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("missing stream summary line")
	}
	sigc <- syscall.SIGTERM
	rows := 0
	for sc.Scan() {
		if strings.Contains(sc.Text(), `"error"`) {
			t.Fatalf("stream errored during drain: %s", sc.Text())
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream cut during drain: %v", err)
	}
	if rows != 3 {
		t.Fatalf("drained stream delivered %d rows, want 3", rows)
	}
	if err := <-errc; err != nil {
		t.Fatalf("serve returned %v", err)
	}
}
