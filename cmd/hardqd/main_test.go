package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

const demoQuery = `P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run %s -update): %v", t.Name(), err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n-- got --\n%s\n-- want --\n%s", path, got, want)
	}
}

func testServer(t *testing.T, args ...string) (*httptest.Server, string) {
	t.Helper()
	var buf bytes.Buffer
	d, err := setup(args, &buf)
	if err != nil {
		t.Fatalf("setup(%v): %v\noutput:\n%s", args, err, buf.String())
	}
	if d.addr == "" {
		t.Fatal("empty addr")
	}
	srv := httptest.NewServer(d.handler)
	t.Cleanup(func() {
		srv.Close()
		if d.wlog != nil {
			d.wlog.Close()
		}
	})
	return srv, buf.String()
}

func getBody(t *testing.T, srv *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	return readBody(t, resp, err)
}

func postBody(t *testing.T, srv *httptest.Server, path string, reqBody []byte) []byte {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(reqBody))
	return readBody(t, resp, err)
}

func readBody(t *testing.T, resp *http.Response, err error) []byte {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d:\n%s", resp.StatusCode, b)
	}
	return b
}

func TestSetupBannerGolden(t *testing.T) {
	_, banner := testServer(t, "-dataset", "figure1", "-method", "auto", "-cache", "1024")
	checkGolden(t, "banner", []byte(banner))
}

func TestEvalGolden(t *testing.T) {
	srv, _ := testServer(t, "-dataset", "figure1")
	b := getBody(t, srv, "/eval?q="+url.QueryEscape(demoQuery)+"&sessions=1")
	checkGolden(t, "eval", b)
}

func TestEvalBatchGolden(t *testing.T) {
	srv, _ := testServer(t, "-dataset", "figure1")
	req, _ := json.Marshal(map[string]any{"queries": []string{demoQuery, demoQuery}})
	b := postBody(t, srv, "/eval", req)
	checkGolden(t, "evalbatch", b)
}

func TestTopKGolden(t *testing.T) {
	srv, _ := testServer(t, "-dataset", "figure1")
	b := getBody(t, srv, "/topk?q="+url.QueryEscape(demoQuery)+"&k=2&bound=1")
	checkGolden(t, "topk", b)
}

func TestStatsGolden(t *testing.T) {
	srv, _ := testServer(t, "-dataset", "figure1")
	// A fixed request sequence makes every counter deterministic.
	getBody(t, srv, "/eval?q="+url.QueryEscape(demoQuery))
	getBody(t, srv, "/eval?q="+url.QueryEscape(demoQuery))
	b := getBody(t, srv, "/stats")
	checkGolden(t, "stats", b)
}

func TestHealthz(t *testing.T) {
	srv, _ := testServer(t, "-dataset", "figure1")
	b := getBody(t, srv, "/healthz")
	if strings.TrimSpace(string(b)) != "ok" {
		t.Fatalf("healthz = %q", b)
	}
}

func TestCacheDisabledBanner(t *testing.T) {
	_, banner := testServer(t, "-dataset", "figure1", "-cache", "-1")
	if !strings.Contains(banner, "cache   : disabled") {
		t.Fatalf("banner missing disabled cache line:\n%s", banner)
	}
}

func TestSetupErrors(t *testing.T) {
	cases := [][]string{
		{"-dataset", "nope"},
		{"-method", "nope"},
		{"-bogusflag"},
		{"-manifest", "testdata/does-not-exist.json"},
		// Dataset-generator flags conflict with -manifest.
		{"-manifest", "testdata/manifest.json", "-dataset", "polls"},
		{"-manifest", "testdata/manifest.json", "-voters", "5"},
		// -shard wants "i[,j...]/n" with in-range, distinct partitions.
		{"-dataset", "figure1", "-shard", "nope"},
		{"-dataset", "figure1", "-shard", "0,0/2"},
		{"-dataset", "figure1", "-shard", "2/2"},
		{"-dataset", "figure1", "-shard", "0/0"},
		{"-dataset", "figure1", "-shard", "x/2"},
		// Coordinator flags are meaningless without (or against) the role.
		{"-partitions", "2"},
		{"-hedge-after", "10ms"},
		{"-coordinator", "nourl"},
		{"-coordinator", "s0=http://localhost:1", "-dataset", "polls"},
		{"-coordinator", "s0=http://localhost:1", "-shard", "0/2"},
		{"-coordinator", "s0=http://localhost:1", "-manifest", "testdata/manifest.json"},
		// WAL flags: a policy without a directory is ignored config, an
		// unknown policy is a typo, and the coordinator has no ingest path.
		{"-wal-sync", "always"},
		{"-dataset", "figure1", "-wal-dir", "testdata/never-created", "-wal-sync", "nope"},
		{"-coordinator", "s0=http://localhost:1", "-wal-dir", "testdata/never-created"},
		{"-coordinator", "s0=http://localhost:1", "-max-inflight", "4"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if _, err := setup(args, &buf); err == nil {
			t.Errorf("setup(%v): want error", args)
		}
	}
}

func TestCacheZeroDisables(t *testing.T) {
	_, banner := testServer(t, "-dataset", "figure1", "-cache", "0")
	if !strings.Contains(banner, "cache   : disabled") {
		t.Fatalf("-cache 0 should disable the cache:\n%s", banner)
	}
}

// --- multi-model (manifest) tests ---

const pollsDemoQuery = `P(_, _; l; r), C(l, p, M, _, _, _), C(r, p, F, _, _, _)`

func manifestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv, _ := testServer(t, "-manifest", "testdata/manifest.json")
	return srv
}

func TestManifestBannerGolden(t *testing.T) {
	_, banner := testServer(t, "-manifest", "testdata/manifest.json", "-cache", "1024")
	checkGolden(t, "manifest_banner", []byte(banner))
}

func TestModelsGolden(t *testing.T) {
	srv := manifestServer(t)
	b := getBody(t, srv, "/models")
	checkGolden(t, "models", b)
}

func TestEvalWithModelGolden(t *testing.T) {
	srv := manifestServer(t)
	b := getBody(t, srv, "/eval?q="+url.QueryEscape(pollsDemoQuery)+"&model=polls-small")
	checkGolden(t, "eval_model_polls", b)
}

func TestTopKWithModel(t *testing.T) {
	srv := manifestServer(t)
	b := getBody(t, srv, "/topk?q="+url.QueryEscape(demoQuery)+"&k=2&bound=1&model=figure1")
	var resp struct {
		Results []struct {
			Top []struct {
				Prob float64 `json:"prob"`
			} `json:"top"`
		} `json:"results"`
	}
	if err := json.Unmarshal(b, &resp); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, b)
	}
	if len(resp.Results) != 1 || len(resp.Results[0].Top) != 2 {
		t.Fatalf("topk shape: %s", b)
	}
}

func statusOf(t *testing.T, srv *httptest.Server, method, path string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, srv.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestModelLifecycle drives the runtime catalog management surface:
// register, inspect, query, evict, and the 404/409 error statuses.
func TestModelLifecycle(t *testing.T) {
	srv := manifestServer(t)

	// Unknown models are 404 on every query route.
	if code, _ := statusOf(t, srv, "GET", "/eval?q="+url.QueryEscape(demoQuery)+"&model=ghost", nil); code != http.StatusNotFound {
		t.Fatalf("eval on unknown model: status %d, want 404", code)
	}
	if code, _ := statusOf(t, srv, "GET", "/models/ghost", nil); code != http.StatusNotFound {
		t.Fatalf("GET /models/ghost: status %d, want 404", code)
	}
	if code, _ := statusOf(t, srv, "DELETE", "/models/ghost", nil); code != http.StatusNotFound {
		t.Fatalf("DELETE /models/ghost: status %d, want 404", code)
	}

	// Register a new preloaded model at runtime and query it.
	spec := []byte(`{"name": "f2", "dataset": "figure1", "preload": true}`)
	if code, b := statusOf(t, srv, "POST", "/models", spec); code != http.StatusOK {
		t.Fatalf("POST /models: status %d\n%s", code, b)
	}
	if code, b := statusOf(t, srv, "POST", "/models", spec); code != http.StatusConflict {
		t.Fatalf("duplicate POST /models: status %d, want 409\n%s", code, b)
	}
	b := getBody(t, srv, "/models/f2")
	if !strings.Contains(string(b), `"loaded": true`) {
		t.Fatalf("GET /models/f2 not loaded:\n%s", b)
	}
	getBody(t, srv, "/eval?q="+url.QueryEscape(demoQuery)+"&model=f2")

	// Evict it; querying again is a 404, deleting again is a 404.
	if code, b := statusOf(t, srv, "DELETE", "/models/f2", nil); code != http.StatusOK {
		t.Fatalf("DELETE /models/f2: status %d\n%s", code, b)
	}
	if code, _ := statusOf(t, srv, "GET", "/eval?q="+url.QueryEscape(demoQuery)+"&model=f2", nil); code != http.StatusNotFound {
		t.Fatalf("eval on deleted model: status %d, want 404", code)
	}
	if code, _ := statusOf(t, srv, "DELETE", "/models/f2", nil); code != http.StatusNotFound {
		t.Fatalf("second DELETE: status %d, want 404", code)
	}

	// Bad registrations are 400.
	for _, bad := range []string{
		`{"name": "x", "dataset": "nope"}`,
		`{"name": "bad name", "dataset": "figure1"}`,
		`{"name": "x", "dataset": "figure1", "typo": 1}`,
		`{"name": "x", "dataset": "polls", "candidates": -1}`,
	} {
		if code, _ := statusOf(t, srv, "POST", "/models", []byte(bad)); code != http.StatusBadRequest {
			t.Fatalf("POST /models %s: status %d, want 400", bad, code)
		}
	}
}

// TestManifestServesModelsConcurrently is the acceptance check that one
// daemon serves two named dataset-backed models at the same time.
func TestManifestServesModelsConcurrently(t *testing.T) {
	srv := manifestServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q, model := demoQuery, "figure1"
			if i%2 == 1 {
				q, model = pollsDemoQuery, "polls-small"
			}
			resp, err := srv.Client().Get(srv.URL + "/eval?q=" + url.QueryEscape(q) + "&model=" + model)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(resp.Body)
				t.Errorf("model %s: status %d\n%s", model, resp.StatusCode, b)
			}
		}(i)
	}
	wg.Wait()
}

// TestHelpGolden pins the -help output to docs/hardqd_help.txt so the
// documented flag reference cannot go stale: the docs CI job fails when a
// flag changes without regenerating the golden (go test -run Help -update).
func TestHelpGolden(t *testing.T) {
	var buf bytes.Buffer
	if _, err := setup([]string{"-help"}, &buf); err != flag.ErrHelp {
		t.Fatalf("setup(-help) = %v, want flag.ErrHelp", err)
	}
	path := filepath.Join("..", "..", "docs", "hardqd_help.txt")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing help golden (run go test -run TestHelpGolden -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-help output differs from %s:\n-- got --\n%s\n-- want --\n%s", path, buf.Bytes(), want)
	}
}

// TestAPIDocEndpointsCovered verifies docs/API.md against the live
// handler: every route the daemon serves must be documented as a
// "## METHOD /path" section, the load-bearing field names must appear,
// and each GET endpoint of the doc must actually respond on a test
// server. A new route or renamed field fails this test until the doc is
// updated.
func TestAPIDocEndpointsCovered(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "API.md"))
	if err != nil {
		t.Fatalf("reading docs/API.md: %v", err)
	}
	text := string(doc)

	// The daemon's full route table; extend this list (and API.md) when
	// adding endpoints.
	endpoints := []string{
		"POST /v1/query",
		"POST /v1/sessions",
		"GET /eval",
		"POST /eval",
		"GET /topk",
		"POST /topk",
		"GET /models",
		"POST /models",
		"GET /models/{name}",
		"DELETE /models/{name}",
		"GET /stats",
		"GET /healthz",
		// Coordinator front end (internal/cluster), same doc page.
		"GET /cluster/stats",
		"GET /cluster/placement",
		"POST /cluster/shards",
		"DELETE /cluster/shards/{name}",
	}
	for _, ep := range endpoints {
		if !strings.Contains(text, "## "+ep) {
			t.Errorf("docs/API.md: missing section for %q", ep)
		}
	}
	for _, field := range []string{
		"model", "timeout_ms", "per_session", "plan", "preload",
		"cache_hits", "loaded", "refs", "deleted",
		// unified /v1/query surface
		"kind", "query", "method", "k", "bound", "seed",
		"agg_rel", "agg_attr", "stream", "requests",
		// consensus surface
		"target", "ranking", "expected_tau", "pairwise", "pair_half_width",
		"half_width", "items", "domain", "sampled",
		// coordinator surface
		"cluster", "partial", "failed_partitions", "owner", "replica",
		"excluded", "hedge_wins", "degraded",
		// durability & overload surface
		"retry_after", "sheds", "in_flight", "queued", "snapshot_errors",
	} {
		if !strings.Contains(text, "`"+field+"`") {
			t.Errorf("docs/API.md: field %q not documented", field)
		}
	}

	// Exercise the documented read paths against a manifest-backed server.
	srv := manifestServer(t)
	for _, path := range []string{
		"/eval?q=" + url.QueryEscape(demoQuery) + "&sessions=1&model=figure1",
		"/topk?q=" + url.QueryEscape(demoQuery) + "&k=2&bound=1&model=figure1",
		"/models",
		"/models/figure1",
		"/stats",
		"/healthz",
	} {
		getBody(t, srv, path)
	}
	// And the unified endpoint, one request per documented kind.
	for _, body := range []string{
		`{"kind": "bool", "query": ` + strconv.Quote(demoQuery) + `, "model": "figure1"}`,
		`{"kind": "count", "query": ` + strconv.Quote(demoQuery) + `, "model": "figure1", "per_session": true}`,
		`{"kind": "topk", "query": ` + strconv.Quote(demoQuery) + `, "model": "figure1", "k": 2, "bound": 1}`,
		`{"kind": "aggregate", "query": ` + strconv.Quote(demoQuery) + `, "model": "figure1", "agg_rel": "V", "agg_attr": "age"}`,
		`{"kind": "countdist", "query": ` + strconv.Quote(demoQuery) + `, "model": "figure1"}`,
		`{"kind": "consensus", "query": ` + strconv.Quote(demoQuery) + `, "model": "figure1", "target": "map"}`,
		`{"kind": "consensus", "query": ` + strconv.Quote(demoQuery) + `, "model": "figure1", "target": "median", "per_session": true}`,
		`{"kind": "consensus", "query": ` + strconv.Quote(demoQuery) + `, "model": "figure1", "target": "topk", "k": 2, "method": "rejection", "seed": 7}`,
		`{"requests": [{"kind": "bool", "query": ` + strconv.Quote(demoQuery) + `, "model": "figure1"}]}`,
		`{"kind": "topk", "query": ` + strconv.Quote(demoQuery) + `, "model": "figure1", "k": 2, "stream": true}`,
	} {
		postBody(t, srv, "/v1/query", []byte(body))
	}
}

// TestV1QueryGolden pins the unified endpoint's single-request wire shape;
// deterministic because the exact method answers the demo query.
func TestV1QueryGolden(t *testing.T) {
	srv, _ := testServer(t, "-dataset", "figure1")
	req, _ := json.Marshal(map[string]any{"kind": "bool", "query": demoQuery, "per_session": true})
	b := postBody(t, srv, "/v1/query", req)
	checkGolden(t, "v1_query", b)
}

// TestV1QueryStreamGolden pins the NDJSON stream framing.
func TestV1QueryStreamGolden(t *testing.T) {
	srv, _ := testServer(t, "-dataset", "figure1")
	req, _ := json.Marshal(map[string]any{"kind": "topk", "query": demoQuery, "k": 2, "bound": 1, "stream": true})
	b := postBody(t, srv, "/v1/query", req)
	checkGolden(t, "v1_query_stream", b)
}

// --- cluster roles (-shard / -coordinator) ---

func TestShardBannerGolden(t *testing.T) {
	_, banner := testServer(t, "-dataset", "figure1", "-shard", "0/2")
	checkGolden(t, "shard_banner", []byte(banner))
}

// TestShardServesPartitionModels checks that a shard exposes exactly its
// "<model>--p<i>" partition models and nothing else.
func TestShardServesPartitionModels(t *testing.T) {
	srv, _ := testServer(t, "-dataset", "figure1", "-shard", "0,1/2")
	b := getBody(t, srv, "/models")
	for _, name := range []string{"default--p0", "default--p1"} {
		if !strings.Contains(string(b), `"`+name+`"`) {
			t.Errorf("/models missing %s:\n%s", name, b)
		}
	}
	// The unsplit model is not served; queries must name a partition.
	if code, _ := statusOf(t, srv, "GET", "/eval?q="+url.QueryEscape(demoQuery), nil); code != http.StatusNotFound {
		t.Fatalf("eval on unsplit model: status %d, want 404", code)
	}
	req, _ := json.Marshal(map[string]any{"kind": "bool", "query": demoQuery, "model": "default--p1", "per_session": true})
	postBody(t, srv, "/v1/query", req)
}

// TestCoordinatorBannerGolden pins the coordinator's startup banner. Fixed
// shard URLs keep it deterministic; nothing is dialed at setup time.
func TestCoordinatorBannerGolden(t *testing.T) {
	var buf bytes.Buffer
	d, err := setup([]string{
		"-coordinator", "s0=http://shard0:8081,s1=http://shard1:8082",
		"-partitions", "4", "-probe-every", "0", "-cache", "64",
	}, &buf)
	if err != nil {
		t.Fatalf("setup: %v\n%s", err, buf.String())
	}
	if d.handler == nil {
		t.Fatal("nil handler")
	}
	d.cl.Close()
	checkGolden(t, "coord_banner", buf.Bytes())
}

// TestCoordinatorEndToEnd wires two shard daemons behind a coordinator
// daemon, all through the real flag surface, and requires the merged
// answers to match a single-process daemon byte for byte. Both shards hold
// both partitions (full replication), so the answer is placement-invariant.
func TestCoordinatorEndToEnd(t *testing.T) {
	single, _ := testServer(t, "-dataset", "figure1")
	s0, _ := testServer(t, "-dataset", "figure1", "-shard", "0,1/2")
	s1, _ := testServer(t, "-dataset", "figure1", "-shard", "0,1/2")
	// Hedging off: a hedge that wins on the other replica would still merge
	// the same values but report its own solve counters.
	coord, banner := testServer(t,
		"-coordinator", "s0="+s0.URL+",s1="+s1.URL,
		"-probe-every", "0", "-hedge-after", "-1ms")
	if !strings.Contains(banner, "coordinator: 2 shards, 2 partitions per model") {
		t.Fatalf("coordinator banner:\n%s", banner)
	}

	for _, body := range []string{
		`{"kind": "bool", "query": ` + strconv.Quote(demoQuery) + `, "per_session": true}`,
		// No "bound": the bounded top-k prunes sessions globally, which a
		// per-partition fan-out legitimately cannot reproduce counter-exactly.
		`{"kind": "topk", "query": ` + strconv.Quote(demoQuery) + `, "k": 2}`,
		`{"kind": "countdist", "query": ` + strconv.Quote(demoQuery) + `}`,
	} {
		want := postBody(t, single, "/v1/query", []byte(body))
		got := postBody(t, coord, "/v1/query", []byte(body))
		if !bytes.Equal(got, want) {
			t.Errorf("merged answer differs for %s:\n-- single --\n%s\n-- cluster --\n%s", body, want, got)
		}
	}

	// The merged catalog regroups partitions into the unsplit model.
	var models struct {
		Models []struct {
			Name     string `json:"name"`
			Sessions int    `json:"sessions"`
		} `json:"models"`
	}
	if err := json.Unmarshal(getBody(t, coord, "/models"), &models); err != nil {
		t.Fatal(err)
	}
	if len(models.Models) != 1 || models.Models[0].Name != "default" || models.Models[0].Sessions != 3 {
		t.Fatalf("merged /models = %+v, want one row default/3 sessions", models.Models)
	}
	getBody(t, coord, "/cluster/stats")
	getBody(t, coord, "/cluster/placement")
	getBody(t, coord, "/healthz")
}
