package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

const demoQuery = `P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run %s -update): %v", t.Name(), err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n-- got --\n%s\n-- want --\n%s", path, got, want)
	}
}

func testServer(t *testing.T, args ...string) (*httptest.Server, string) {
	t.Helper()
	var buf bytes.Buffer
	svc, addr, err := setup(args, &buf)
	if err != nil {
		t.Fatalf("setup(%v): %v\noutput:\n%s", args, err, buf.String())
	}
	if addr == "" {
		t.Fatal("empty addr")
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return srv, buf.String()
}

func getBody(t *testing.T, srv *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	return readBody(t, resp, err)
}

func postBody(t *testing.T, srv *httptest.Server, path string, reqBody []byte) []byte {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(reqBody))
	return readBody(t, resp, err)
}

func readBody(t *testing.T, resp *http.Response, err error) []byte {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d:\n%s", resp.StatusCode, b)
	}
	return b
}

func TestSetupBannerGolden(t *testing.T) {
	_, banner := testServer(t, "-dataset", "figure1", "-method", "auto", "-cache", "1024")
	checkGolden(t, "banner", []byte(banner))
}

func TestEvalGolden(t *testing.T) {
	srv, _ := testServer(t, "-dataset", "figure1")
	b := getBody(t, srv, "/eval?q="+url.QueryEscape(demoQuery)+"&sessions=1")
	checkGolden(t, "eval", b)
}

func TestEvalBatchGolden(t *testing.T) {
	srv, _ := testServer(t, "-dataset", "figure1")
	req, _ := json.Marshal(map[string]any{"queries": []string{demoQuery, demoQuery}})
	b := postBody(t, srv, "/eval", req)
	checkGolden(t, "evalbatch", b)
}

func TestTopKGolden(t *testing.T) {
	srv, _ := testServer(t, "-dataset", "figure1")
	b := getBody(t, srv, "/topk?q="+url.QueryEscape(demoQuery)+"&k=2&bound=1")
	checkGolden(t, "topk", b)
}

func TestStatsGolden(t *testing.T) {
	srv, _ := testServer(t, "-dataset", "figure1")
	// A fixed request sequence makes every counter deterministic.
	getBody(t, srv, "/eval?q="+url.QueryEscape(demoQuery))
	getBody(t, srv, "/eval?q="+url.QueryEscape(demoQuery))
	b := getBody(t, srv, "/stats")
	checkGolden(t, "stats", b)
}

func TestHealthz(t *testing.T) {
	srv, _ := testServer(t, "-dataset", "figure1")
	b := getBody(t, srv, "/healthz")
	if strings.TrimSpace(string(b)) != "ok" {
		t.Fatalf("healthz = %q", b)
	}
}

func TestCacheDisabledBanner(t *testing.T) {
	_, banner := testServer(t, "-dataset", "figure1", "-cache", "-1")
	if !strings.Contains(banner, "cache   : disabled") {
		t.Fatalf("banner missing disabled cache line:\n%s", banner)
	}
}

func TestSetupErrors(t *testing.T) {
	cases := [][]string{
		{"-dataset", "nope"},
		{"-method", "nope"},
		{"-bogusflag"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if _, _, err := setup(args, &buf); err == nil {
			t.Errorf("setup(%v): want error", args)
		}
	}
}

func TestCacheZeroDisables(t *testing.T) {
	_, banner := testServer(t, "-dataset", "figure1", "-cache", "0")
	if !strings.Contains(banner, "cache   : disabled") {
		t.Fatalf("-cache 0 should disable the cache:\n%s", banner)
	}
}
