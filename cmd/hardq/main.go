// Command hardq evaluates conjunctive queries over a generated RIM-PPD.
//
// Usage examples:
//
//	hardq -dataset figure1 -query 'P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)'
//	hardq -dataset polls -candidates 20 -voters 100 \
//	      -query 'P(_, _; l; r), C(l, p, M, _, _, _), C(r, p, F, _, _, _)' -mode count
//	hardq -dataset crowdrank -workers 500 -mode topk -k 5 -bound 1
//	hardq -dataset figure1 -mode countdist
//	hardq -dataset figure1 -mode aggregate -agg-rel C -agg-attr age
//	hardq -dataset figure1 -mode consensus -target median
//	hardq -dataset figure1 -query 'P(_,_; a; b), C(a,_,F,_,_,_) | P(_,_; a; b), C(a,D,_,_,JD,_)'
//	hardq -manifest examples/registry/manifest.json -model polls-small
//
// Every mode maps to one Kind of the unified query API: the CLI builds a
// single probpref Request and answers it through Engine.Do, exactly like
// the daemon's POST /v1/query endpoint.
//
// The query language follows the paper's datalog notation: preference atoms
// P(session...; left; right), ordinary atoms R(args...), and comparisons.
// Lowercase identifiers are variables, Capitalized identifiers and quoted
// strings are constants, "_" is a wildcard. A top-level "|" separates the
// disjuncts of a union of conjunctive queries.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"time"

	"probpref/internal/consensus"
	"probpref/internal/dataset"
	"probpref/internal/ppd"
	"probpref/internal/registry"
	"probpref/internal/server"
)

// consensusRanking renders a consensus ranking as its item keys, best
// first.
func consensusRanking(c *ppd.ConsensusResult) string {
	keys := make([]string, len(c.Ranking))
	for i, it := range c.Ranking {
		keys[i] = c.Domain[it]
	}
	return strings.Join(keys, " > ")
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hardq:", err)
		os.Exit(1)
	}
}

// rejectDatasetFlags fails when dataset-generator flags are combined with
// -manifest: those parameters come from the manifest spec, and silently
// ignoring an explicit flag would report results for a different dataset
// than the command line suggests. (-seed stays legal: it also seeds the
// samplers.)
func rejectDatasetFlags(fs *flag.FlagSet) error {
	var conflict []string
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "dataset", "candidates", "voters", "movies", "workers":
			conflict = append(conflict, "-"+f.Name)
		}
	})
	if len(conflict) > 0 {
		return fmt.Errorf("%s cannot be combined with -manifest: dataset parameters come from the manifest", strings.Join(conflict, ", "))
	}
	return nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hardq", flag.ContinueOnError)
	var (
		ds       = fs.String("dataset", "figure1", "dataset: "+strings.Join(dataset.Names(), " | "))
		manifest = fs.String("manifest", "", "model manifest file; overrides -dataset (pick the model with -model)")
		model    = fs.String("model", "", "model name to evaluate against (requires -manifest; default: the manifest's first model)")
		query    = fs.String("query", "", "conjunctive query (default: a dataset-specific demo query)")
		method   = fs.String("method", "auto", "solver: "+strings.Join(ppd.MethodNames(), " | "))
		deadline = fs.Duration("deadline", 0, "per-run latency budget; implies -method adaptive (unless one is forced): groups whose predicted exact cost exceeds the remaining budget are sampled with reported error bars")
		mode     = fs.String("mode", "bool", "query kind: "+strings.Join(ppd.KindNames(), " | "))
		target   = fs.String("target", "", "consensus answer for -mode consensus: "+strings.Join(consensus.TargetNames(), " | "))
		k        = fs.Int("k", 3, "k for -mode topk, or the cutoff of -target topk")
		bound    = fs.Int("bound", 1, "upper-bound edges for topk (0 = naive)")
		aggRel   = fs.String("agg-rel", "", "aggregate: o-relation providing the aggregated attribute")
		aggAttr  = fs.String("agg-attr", "", "aggregate: numeric attribute to aggregate")
		seed     = fs.Int64("seed", 1, "generator seed")
		cands    = fs.Int("candidates", 20, "polls: number of candidates")
		voters   = fs.Int("voters", 100, "polls: number of voters")
		movies   = fs.Int("movies", 120, "movielens: catalog size")
		workers  = fs.Int("workers", 500, "crowdrank: number of workers")
		verbose  = fs.Bool("v", false, "print per-session probabilities")
		explain  = fs.Bool("explain", false, "print the query plan instead of evaluating")
		par      = fs.Int("parallel", 1, "worker goroutines for group solving")
		cache    = fs.Int("cache", 0, "solve-cache capacity in entries (0 = off); prints a stats line, and with -repeat > 1 later evaluations hit the cache")
		repeat   = fs.Int("repeat", 1, "evaluate the query N times; the printed timing covers the last run (pair with -cache to measure warm-cache latency)")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		db       *ppd.DB
		defQuery string
		dsName   = *ds
		err      error
	)
	if *manifest != "" {
		if err := rejectDatasetFlags(fs); err != nil {
			return err
		}
		man, err := registry.LoadManifest(*manifest)
		if err != nil {
			return err
		}
		spec := man.Models[0]
		if *model != "" {
			found := false
			for _, s := range man.Models {
				if s.Name == *model {
					spec, found = s, true
					break
				}
			}
			if !found {
				names := make([]string, len(man.Models))
				for i, s := range man.Models {
					names[i] = s.Name
				}
				return fmt.Errorf("model %q not in manifest %s (have %s)", *model, *manifest, strings.Join(names, ", "))
			}
		}
		if db, defQuery, err = registry.Build(spec); err != nil {
			return err
		}
		dsName = fmt.Sprintf("%s (model %s)", spec.Dataset, spec.Name)
	} else {
		if *model != "" {
			return fmt.Errorf("-model requires -manifest")
		}
		db, defQuery, err = dataset.Build(dataset.BuildConfig{
			Name: *ds, Seed: *seed, Candidates: *cands, Voters: *voters, Movies: *movies, Workers: *workers,
		})
		if err != nil {
			return err
		}
	}
	src := *query
	if src == "" {
		src = defQuery
	}
	uq, err := ppd.ParseUnion(src)
	if err != nil {
		return err
	}
	q := uq.Disjuncts[0]
	m, err := ppd.ParseMethod(*method)
	if err != nil {
		return err
	}
	kind, err := ppd.ParseKind(*mode)
	if err != nil {
		return err
	}
	if kind == ppd.KindAggregate && (*aggRel == "" || *aggAttr == "") {
		return fmt.Errorf("-mode aggregate requires -agg-rel and -agg-attr")
	}
	if kind == ppd.KindConsensus && *target == "" {
		return fmt.Errorf("-mode consensus requires -target (%s)", strings.Join(consensus.TargetNames(), " | "))
	}
	// The whole CLI answers through the unified request: one Do call per
	// evaluation, whatever the kind.
	req := &ppd.Request{Kind: kind, Queries: uq.Disjuncts}
	switch kind {
	case ppd.KindTopK:
		req.K, req.BoundEdges = *k, *bound
	case ppd.KindAggregate:
		req.AggRel, req.AggAttr = *aggRel, *aggAttr
	case ppd.KindConsensus:
		if req.ConsensusTarget, err = consensus.ParseTarget(*target); err != nil {
			return err
		}
		if req.ConsensusTarget == consensus.TargetTopK {
			req.K = *k
		}
	}
	if _, err := req.Compile(); err != nil {
		return err
	}
	if *deadline < 0 {
		return fmt.Errorf("-deadline must be non-negative, got %v", *deadline)
	}
	if *deadline > 0 && m == ppd.MethodAuto {
		m = ppd.MethodAdaptive // a budget needs the planner to act on it
	}
	// Each evaluation run gets a fresh deadline: the budget is per run, and
	// warm-up repeats should route groups the same way the timed run does.
	runCtx := func() (context.Context, context.CancelFunc) {
		if *deadline > 0 {
			return context.WithTimeout(context.Background(), *deadline)
		}
		return context.Background(), func() {}
	}
	eng := &ppd.Engine{DB: db, Method: m, Rng: rand.New(rand.NewSource(*seed)), Workers: *par}
	var solveCache *server.Cache
	if *cache > 0 {
		solveCache = server.NewCache(*cache)
		eng.Cache = solveCache
	}

	fmt.Fprintf(out, "dataset : %s (m=%d items, %d sessions)\n", dsName, db.M(), db.Prefs[q.Prefs[0].Rel].Sessions.Len())
	fmt.Fprintf(out, "query   : %s\n", uq)
	fmt.Fprintf(out, "method  : %s\n", m)
	if *deadline > 0 {
		fmt.Fprintf(out, "deadline: %v\n", *deadline)
	}

	if *explain {
		if len(uq.Disjuncts) > 1 {
			ex, err := eng.ExplainUnion(uq)
			if err != nil {
				return err
			}
			fmt.Fprint(out, ex)
			return nil
		}
		ex, err := eng.Explain(q)
		if err != nil {
			return err
		}
		fmt.Fprint(out, ex)
		return nil
	}

	// Warm-up evaluations: all but the last run, so the timed run below
	// reports warm-cache latency when -cache is set.
	for i := 1; i < *repeat; i++ {
		err := func() error {
			ctx, cancel := runCtx()
			defer cancel()
			_, err := eng.Do(ctx, req)
			return err
		}()
		if err != nil {
			return err
		}
	}

	ctx, cancel := runCtx()
	defer cancel()
	start := time.Now()
	resp, err := eng.Do(ctx, req)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "elapsed : %v\n", time.Since(start).Round(time.Microsecond))
	switch kind {
	case ppd.KindBool, ppd.KindCount:
		probCI, countCI := "", ""
		if p := resp.Plan; p != nil && p.SampledGroups > 0 {
			probCI = fmt.Sprintf(" ± %.3g (95%%)", p.ProbHalfWidth)
			countCI = fmt.Sprintf(" ± %.3g (95%%)", p.CountHalfWidth)
		}
		fmt.Fprintf(out, "Pr(Q|D)        = %.6g%s\n", resp.Prob, probCI)
		fmt.Fprintf(out, "count(Q)       = %.6g%s (expected sessions satisfying Q)\n", resp.Count, countCI)
		fmt.Fprintf(out, "live sessions  = %d, solver calls = %d (grouping)\n", len(resp.PerSession), resp.Solves)
		if p := resp.Plan; p != nil {
			fmt.Fprintf(out, "plan    : exact groups = %d, sampled = %d, samples = %d, max half-width = %.3g\n",
				p.ExactGroups, p.SampledGroups, p.Samples, p.MaxHalfWidth)
		}
		if *verbose {
			for _, sp := range resp.PerSession {
				fmt.Fprintf(out, "  session %v: %.6g\n", sp.Session.Key, sp.Prob)
			}
		}
	case ppd.KindCountDist:
		dist := resp.Dist
		fmt.Fprintf(out, "count(Q) distribution over %d sessions:\n", dist.N())
		fmt.Fprintf(out, "  mean %.6g  stddev %.6g  mode %d  median %d\n",
			dist.Mean(), dist.StdDev(), dist.Mode(), dist.Quantile(0.5))
		lo, hi := dist.Quantile(0.025), dist.Quantile(0.975)
		fmt.Fprintf(out, "  95%% interval [%d, %d]\n", lo, hi)
		if *verbose {
			for kk, p := range dist.PMF {
				if p > 1e-9 {
					fmt.Fprintf(out, "  Pr(count = %d) = %.6g\n", kk, p)
				}
			}
		}
	case ppd.KindTopK:
		fmt.Fprintf(out, "top-%d sessions (bound edges = %d):\n", *k, *bound)
		for i, sp := range resp.Top {
			fmt.Fprintf(out, "  %2d. %v  Pr = %.6g\n", i+1, sp.Session.Key, sp.Prob)
		}
		diag := resp.Diag
		fmt.Fprintf(out, "bound solves = %d, exact solves = %d, sessions evaluated = %d\n",
			diag.BoundSolves, diag.ExactSolves, diag.SessionsEvaluated)
		if p := diag.Plan; p != nil {
			fmt.Fprintf(out, "plan    : exact groups = %d, sampled = %d, samples = %d, max half-width = %.3g\n",
				p.ExactGroups, p.SampledGroups, p.Samples, p.MaxHalfWidth)
		}
	case ppd.KindAggregate:
		agg := resp.Agg
		fmt.Fprintf(out, "aggregate %s.%s over satisfying sessions:\n", *aggRel, *aggAttr)
		fmt.Fprintf(out, "  E[sum] = %.6g  E[count] = %.6g  avg = %.6g  (%d sessions carry a value)\n",
			agg.Sum, agg.Count, agg.Avg, agg.Sessions)
	case ppd.KindConsensus:
		c := resp.Consensus
		how := "exact"
		if c.Sampled {
			how = fmt.Sprintf("sampled, %d draws, %d accepted", c.Samples, c.Accepts)
		}
		fmt.Fprintf(out, "consensus %s over %d live sessions (%s):\n", c.Target, c.LiveSessions, how)
		switch c.Target {
		case consensus.TargetMAP:
			fmt.Fprintf(out, "  ranking %s  Pr = %.6g\n", consensusRanking(c), c.Prob)
		case consensus.TargetMedian:
			fmt.Fprintf(out, "  ranking %s  E[Kendall tau] = %.6g\n", consensusRanking(c), c.ExpectedTau)
		case consensus.TargetTopK:
			for i, it := range c.Items {
				band := ""
				if c.Sampled {
					band = fmt.Sprintf(" ± %.3g (95%%)", it.Half)
				}
				fmt.Fprintf(out, "  %2d. %s  Pr(top-%d) = %.6g%s\n", i+1, c.Domain[it.Item], *k, it.Prob, band)
			}
		}
		if *verbose {
			for _, row := range c.Rows {
				if row.Sampled {
					fmt.Fprintf(out, "  session %v: %d/%d draws accepted\n", row.Session, row.Accepts, row.Draws)
				} else {
					fmt.Fprintf(out, "  session %v: mass %.6g\n", row.Session, row.Weight)
				}
			}
		}
	}
	if solveCache != nil {
		st := solveCache.Stats()
		fmt.Fprintf(out, "cache   : hits=%d misses=%d evictions=%d entries=%d/%d\n",
			st.Hits, st.Misses, st.Evictions, st.Entries, st.Capacity)
	}
	return nil
}
