package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

var elapsedRe = regexp.MustCompile(`(?m)^elapsed : .*$`)

// checkGolden compares output (with the wall-clock line normalized) to
// testdata/<name>.golden; -update rewrites the files.
func checkGolden(t *testing.T, name, out string) {
	t.Helper()
	got := []byte(elapsedRe.ReplaceAllString(out, "elapsed : <elapsed>"))
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run %s -update): %v", t.Name(), err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n-- got --\n%s\n-- want --\n%s", path, got, want)
	}
}

func TestGolden(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"bool", []string{"-dataset", "figure1", "-v"}},
		{"count", []string{"-dataset", "figure1", "-mode", "count"}},
		{"countdist", []string{"-dataset", "figure1", "-mode", "countdist"}},
		{"topk", []string{"-dataset", "figure1", "-mode", "topk", "-k", "2", "-bound", "1"}},
		{"bool_cache", []string{"-dataset", "figure1", "-cache", "1024"}},
		{"bool_cache_repeat", []string{"-dataset", "figure1", "-cache", "1024", "-repeat", "3"}},
		{"topk_cache", []string{"-dataset", "figure1", "-mode", "topk", "-k", "2", "-cache", "8"}},
		{"union", []string{"-dataset", "figure1", "-query",
			`P(_,_; a; b), C(a,_,F,_,_,_), C(b,_,M,_,_,_) | P(_,_; a; b), C(a,D,_,_,JD,_), C(b,R,_,_,_,_)`}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkGolden(t, tc.name, runOut(t, tc.args...))
		})
	}
}

func TestRunCacheStatsLine(t *testing.T) {
	out := runOut(t, "-dataset", "figure1", "-cache", "1024")
	if !strings.Contains(out, "cache   : hits=0 misses=3 evictions=0 entries=3/1024") {
		t.Errorf("missing or wrong cache stats line:\n%s", out)
	}
	// With -repeat the warmed cache serves the timed run entirely.
	out = runOut(t, "-dataset", "figure1", "-cache", "1024", "-repeat", "2")
	if !strings.Contains(out, "solver calls = 0") || !strings.Contains(out, "hits=3") {
		t.Errorf("warm repeat run should be all cache hits:\n%s", out)
	}
	// Without -cache no stats line appears.
	if out := runOut(t, "-dataset", "figure1"); strings.Contains(out, "cache   :") {
		t.Errorf("unexpected cache line without -cache:\n%s", out)
	}
}

func runOut(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v\noutput:\n%s", args, err, buf.String())
	}
	return buf.String()
}

func TestRunBoolMode(t *testing.T) {
	out := runOut(t, "-dataset", "figure1", "-v")
	for _, want := range []string{"Pr(Q|D)", "count(Q)", "session [Ann 5/5]"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCountDistMode(t *testing.T) {
	out := runOut(t, "-dataset", "figure1", "-mode", "countdist", "-v")
	for _, want := range []string{"distribution over 3 sessions", "mean", "95% interval", "Pr(count = 3)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTopKMode(t *testing.T) {
	out := runOut(t, "-dataset", "figure1", "-mode", "topk", "-k", "2", "-bound", "1")
	if !strings.Contains(out, "top-2 sessions") || !strings.Contains(out, "bound solves") {
		t.Errorf("unexpected topk output:\n%s", out)
	}
}

func TestRunUnionQuery(t *testing.T) {
	out := runOut(t, "-dataset", "figure1", "-query",
		`P(_,_; a; b), C(a,_,F,_,_,_), C(b,_,M,_,_,_) | P(_,_; a; b), C(a,D,_,_,JD,_), C(b,R,_,_,_,_)`)
	if !strings.Contains(out, " | ") {
		t.Errorf("union separator missing from echo:\n%s", out)
	}
	if !strings.Contains(out, "Pr(Q|D)") {
		t.Errorf("missing result:\n%s", out)
	}
}

func TestRunExplain(t *testing.T) {
	out := runOut(t, "-dataset", "figure1", "-explain", "-query",
		`P(_, _; c1; c2), C(c1, D, _, _, e, _), C(c2, R, _, _, e, _)`)
	if !strings.Contains(out, "two-label") {
		t.Errorf("explain output missing recommendation:\n%s", out)
	}
}

func TestRunExplainUnion(t *testing.T) {
	out := runOut(t, "-dataset", "figure1", "-explain", "-query",
		`P(_,_; a; b), C(a,_,F,_,_,_), C(b,_,M,_,_,_) | P(_,_; a; b), C(a,D,_,_,e,_), C(b,R,_,_,e,_)`)
	for _, want := range []string{"union of 2 disjuncts", "-- merged --", "recommended"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain-union output missing %q:\n%s", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-dataset", "nope"},
		{"-dataset", "figure1", "-mode", "nope"},
		{"-dataset", "figure1", "-method", "nope"},
		{"-dataset", "figure1", "-query", "not a query("},
		{"-bogusflag"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}

// TestGoldenMethodError pins the -method error message: it must enumerate
// every valid method name (including the planner's "adaptive") so a user
// typo is self-correcting.
func TestGoldenMethodError(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-dataset", "figure1", "-method", "bogus"}, &buf)
	if err == nil {
		t.Fatal("want error for -method bogus")
	}
	checkGolden(t, "method_bogus", err.Error()+"\n")
}

// TestRunDeadlineAdaptive is the CLI acceptance path: a 1ms deadline on a
// fixture whose exact inference cannot fit that budget returns a sampled
// answer with a non-zero confidence half-width instead of hanging or
// erroring. (Not a golden test: the estimates are seeded but the elapsed
// budget at routing time is wall-clock.)
func TestRunDeadlineAdaptive(t *testing.T) {
	out := runOut(t, "-dataset", "crowdrank", "-workers", "12", "-deadline", "1ms")
	for _, want := range []string{"method  : adaptive", "deadline: 1ms", "plan    :", "±", "(95%)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "sampled = 0,") {
		t.Errorf("1ms deadline should sample the crowdrank groups:\n%s", out)
	}
	if strings.Contains(out, "max half-width = 0\n") {
		t.Errorf("sampled run reports zero half-width:\n%s", out)
	}
}

// TestRunDeadlineKeepsForcedMethod: -deadline only implies adaptive when no
// method was forced.
func TestRunDeadlineKeepsForcedMethod(t *testing.T) {
	out := runOut(t, "-dataset", "figure1", "-method", "bipartite", "-deadline", "1s")
	if !strings.Contains(out, "method  : bipartite") {
		t.Errorf("forced method overridden:\n%s", out)
	}
}

func TestRunMethodsProduceSameAnswer(t *testing.T) {
	extract := func(out string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "Pr(Q|D)") {
				return line
			}
		}
		return ""
	}
	ref := extract(runOut(t, "-dataset", "figure1", "-method", "auto"))
	if ref == "" {
		t.Fatal("no Pr(Q|D) line")
	}
	for _, m := range []string{"bipartite", "general", "relorder"} {
		got := extract(runOut(t, "-dataset", "figure1", "-method", m))
		if got != ref {
			t.Errorf("method %s: %q != %q", m, got, ref)
		}
	}
}

// TestGoldenManifestModel evaluates against a named model picked from a
// manifest instead of the -dataset flags.
func TestGoldenManifestModel(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-manifest", "testdata/manifest.json", "-model", "polls-small"}, &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	checkGolden(t, "manifest_model", buf.String())
}

func TestRunManifestDefaultsToFirstModel(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-manifest", "testdata/manifest.json"}, &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "model figure1") {
		t.Fatalf("expected the manifest's first model:\n%s", buf.String())
	}
}

func TestRunManifestErrors(t *testing.T) {
	cases := [][]string{
		{"-manifest", "testdata/manifest.json", "-model", "ghost"},
		{"-manifest", "testdata/does-not-exist.json"},
		{"-model", "figure1"}, // -model without -manifest
		// Dataset-generator flags conflict with -manifest (the manifest
		// spec would silently override them).
		{"-manifest", "testdata/manifest.json", "-dataset", "polls"},
		{"-manifest", "testdata/manifest.json", "-candidates", "5"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}

// TestHelpGolden pins the -help output to docs/hardq_help.txt so the
// documented flag reference cannot go stale: the docs CI job fails when a
// flag changes without regenerating the golden (go test -run Help -update).
func TestHelpGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-help"}, &buf); err != flag.ErrHelp {
		t.Fatalf("run(-help) = %v, want flag.ErrHelp", err)
	}
	path := filepath.Join("..", "..", "docs", "hardq_help.txt")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing help golden (run go test -run TestHelpGolden -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-help output differs from %s:\n-- got --\n%s\n-- want --\n%s", path, buf.Bytes(), want)
	}
}
