// Command experiments reproduces the tables and figures of the paper's
// evaluation section. Each figure id maps to a driver in
// internal/experiment that regenerates the series the paper plots. It also
// hosts the benchmark regression harness: -bench runs the solver/planner
// micro-benchmarks of internal/bench and emits a machine-readable JSON
// report for CI to archive and compare across PRs.
//
// Usage:
//
//	experiments -list
//	experiments -fig 4
//	experiments -fig all -scale paper
//	experiments -bench -benchtime 100ms -benchout BENCH_PR4.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"probpref/internal/bench"
	"probpref/internal/experiment"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure id (4, 5, 6, 7a, 7b, 8, 9, 10a, 10b, 11, 12, 13a, 13b, 14, 15; extensions x1..x4) or 'all'")
		scale     = flag.String("scale", "small", "experiment scale: small | paper")
		list      = flag.Bool("list", false, "list available figures and exit")
		runBench  = flag.Bool("bench", false, "run the benchmark regression harness instead of figures")
		benchTime = flag.Duration("benchtime", 100*time.Millisecond, "minimum measurement time per benchmark")
		benchOut  = flag.String("benchout", "BENCH_PR4.json", "benchmark report path ('-' for stdout)")
	)
	flag.Parse()
	if *runBench {
		if err := runBenchmarks(*benchTime, *benchOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, id := range experiment.FigureIDs {
			fmt.Printf("  %s\n", id)
		}
		return
	}
	sc, err := experiment.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ids := experiment.FigureIDs
	if *fig != "all" {
		if _, ok := experiment.Figures[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q; use -list\n", *fig)
			os.Exit(2)
		}
		ids = []string{*fig}
	}
	for _, id := range ids {
		start := time.Now()
		tab, err := experiment.Figures[id](sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", id, err)
			os.Exit(1)
		}
		tab.Fprint(os.Stdout)
		fmt.Printf("  (figure %s regenerated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// runBenchmarks measures the registered micro-benchmarks and writes the
// JSON report, echoing a human-readable ns/op table to stdout.
func runBenchmarks(benchTime time.Duration, out string) error {
	rep, err := bench.Run(benchTime)
	if err != nil {
		return err
	}
	for _, r := range rep.Results {
		fmt.Printf("%-32s %12.0f ns/op  (n=%d)\n", r.Name, r.NsPerOp, r.N)
	}
	if out == "-" {
		return rep.WriteJSON(os.Stdout)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
