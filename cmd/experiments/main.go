// Command experiments reproduces the tables and figures of the paper's
// evaluation section. Each figure id maps to a driver in
// internal/experiment that regenerates the series the paper plots. It also
// hosts the benchmark regression harness: -bench runs the solver/planner
// micro-benchmarks of internal/bench and emits a machine-readable JSON
// report for CI to archive and compare across PRs, -benchcompare gates two
// reports against the regression threshold, and -cpuprofile/-memprofile
// capture pprof profiles of whatever the invocation runs.
//
// Usage:
//
//	experiments -list
//	experiments -fig 4
//	experiments -fig all -scale paper
//	experiments -bench -benchtime 100ms -benchout BENCH_PR9.json
//	experiments -bench -benchcompare BENCH_PR6.json            # fresh run vs old report
//	experiments -benchcompare BENCH_PR6.json,BENCH_PR9.json    # file vs file
//	experiments -bench -cpuprofile cpu.prof -memprofile mem.prof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"probpref/internal/bench"
	"probpref/internal/experiment"
)

// benchComparePrefixes are the case families gated by -benchcompare; the
// rest of the registry (sampling, planner end-to-end) is archived for
// trend-watching but too noisy for a hard gate.
var benchComparePrefixes = []string{"solver/*", "do/*", "consensus/*"}

// benchMaxRegress fails the compare when a gated case slows down (or grows
// its allocations) by more than this fraction.
const benchMaxRegress = 0.25

func main() {
	var (
		fig        = flag.String("fig", "all", "figure id (4, 5, 6, 7a, 7b, 8, 9, 10a, 10b, 11, 12, 13a, 13b, 14, 15; extensions x1..x4) or 'all'")
		scale      = flag.String("scale", "small", "experiment scale: small | paper")
		list       = flag.Bool("list", false, "list available figures and exit")
		runBench   = flag.Bool("bench", false, "run the benchmark regression harness instead of figures")
		benchTime  = flag.Duration("benchtime", 100*time.Millisecond, "minimum measurement time per benchmark")
		benchOut   = flag.String("benchout", "BENCH_PR9.json", "benchmark report path ('-' for stdout)")
		benchCmp   = flag.String("benchcompare", "", "compare benchmark reports and fail on >25% regression of solver/*, do/* or consensus/* cases: OLD.json (against a fresh -bench run) or OLD.json,NEW.json (file vs file)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()
	// run wraps the work so profile-flushing defers execute before exit —
	// a failed run (e.g. a compare that found regressions) is exactly the
	// run whose profile matters.
	code := func() int {
		if *cpuProfile != "" {
			f, err := os.Create(*cpuProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			defer func() {
				pprof.StopCPUProfile()
				f.Close()
			}()
		}
		if *memProfile != "" {
			defer func() {
				f, err := os.Create(*memProfile)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					return
				}
				defer f.Close()
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, err)
				}
			}()
		}
		switch {
		case *runBench:
			rep, err := runBenchmarks(*benchTime, *benchOut)
			if err == nil && *benchCmp != "" {
				err = compareAgainst(*benchCmp, rep)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			return 0
		case *benchCmp != "":
			if err := compareAgainst(*benchCmp, nil); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			return 0
		}
		if *list {
			for _, id := range experiment.FigureIDs {
				fmt.Printf("  %s\n", id)
			}
			return 0
		}
		sc, err := experiment.ParseScale(*scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		ids := experiment.FigureIDs
		if *fig != "all" {
			if _, ok := experiment.Figures[*fig]; !ok {
				fmt.Fprintf(os.Stderr, "unknown figure %q; use -list\n", *fig)
				return 2
			}
			ids = []string{*fig}
		}
		for _, id := range ids {
			start := time.Now()
			tab, err := experiment.Figures[id](sc)
			if err != nil {
				fmt.Fprintf(os.Stderr, "figure %s: %v\n", id, err)
				return 1
			}
			tab.Fprint(os.Stdout)
			fmt.Printf("  (figure %s regenerated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
		return 0
	}()
	os.Exit(code)
}

// runBenchmarks measures the registered micro-benchmarks and writes the
// JSON report, echoing a human-readable table to stdout.
func runBenchmarks(benchTime time.Duration, out string) (*bench.Report, error) {
	rep, err := bench.Run(benchTime)
	if err != nil {
		return nil, err
	}
	for _, r := range rep.Results {
		fmt.Printf("%-32s %12.0f ns/op %10.1f allocs/op  (n=%d)\n", r.Name, r.NsPerOp, r.AllocsPerOp, r.N)
	}
	if out == "-" {
		return rep, rep.WriteJSON(os.Stdout)
	}
	f, err := os.Create(out)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		return nil, err
	}
	fmt.Printf("wrote %s\n", out)
	return rep, nil
}

// compareAgainst gates reports: spec is "OLD.json" (fresh must be the
// just-measured report) or "OLD.json,NEW.json" (both loaded from disk).
// Returns an error listing every regression beyond the threshold.
func compareAgainst(spec string, fresh *bench.Report) error {
	oldPath, newPath, ok := strings.Cut(spec, ",")
	old, err := bench.ReadReport(oldPath)
	if err != nil {
		return err
	}
	newRep := fresh
	if ok {
		if newRep, err = bench.ReadReport(newPath); err != nil {
			return err
		}
	} else if newRep == nil {
		return fmt.Errorf("-benchcompare %s: give OLD,NEW files or combine with -bench", spec)
	}
	fails := bench.Compare(old, newRep, benchComparePrefixes, benchMaxRegress)
	if len(fails) > 0 {
		return fmt.Errorf("benchmark regressions vs %s:\n  %s", oldPath, strings.Join(fails, "\n  "))
	}
	fmt.Printf("benchmark compare vs %s: no regressions\n", oldPath)
	return nil
}
