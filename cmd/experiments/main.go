// Command experiments reproduces the tables and figures of the paper's
// evaluation section. Each figure id maps to a driver in
// internal/experiment that regenerates the series the paper plots.
//
// Usage:
//
//	experiments -list
//	experiments -fig 4
//	experiments -fig all -scale paper
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"probpref/internal/experiment"
)

func main() {
	var (
		fig   = flag.String("fig", "all", "figure id (4, 5, 6, 7a, 7b, 8, 9, 10a, 10b, 11, 12, 13a, 13b, 14, 15; extensions x1..x4) or 'all'")
		scale = flag.String("scale", "small", "experiment scale: small | paper")
		list  = flag.Bool("list", false, "list available figures and exit")
	)
	flag.Parse()
	if *list {
		for _, id := range experiment.FigureIDs {
			fmt.Printf("  %s\n", id)
		}
		return
	}
	sc, err := experiment.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ids := experiment.FigureIDs
	if *fig != "all" {
		if _, ok := experiment.Figures[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q; use -list\n", *fig)
			os.Exit(2)
		}
		ids = []string{*fig}
	}
	for _, id := range ids {
		start := time.Now()
		tab, err := experiment.Figures[id](sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", id, err)
			os.Exit(1)
		}
		tab.Fprint(os.Stdout)
		fmt.Printf("  (figure %s regenerated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
