package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"probpref/internal/ppd"
)

func TestRunRequiresOut(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-dataset", "figure1"}, &buf); err == nil {
		t.Fatal("want error without -out")
	}
}

func TestRunRejectsUnknownDataset(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-dataset", "nope", "-out", t.TempDir()}, &buf)
	if err == nil || !strings.Contains(err.Error(), "unknown dataset") {
		t.Fatalf("err = %v, want unknown dataset", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("want flag parse error")
	}
}

func TestGenerateFigure1RoundTrips(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-dataset", "figure1", "-out", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dataset figure1") {
		t.Errorf("summary missing: %q", buf.String())
	}

	// Reload the written files into a fresh DB and evaluate a query.
	cf, err := os.Open(filepath.Join(dir, "C.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	items, err := ppd.LoadRelationCSV("C", cf)
	if err != nil {
		t.Fatal(err)
	}
	db, err := ppd.NewDB(items)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := os.Open(filepath.Join(dir, "P.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	pref, err := ppd.LoadPrefJSON(pf)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddPrefRelation(pref); err != nil {
		t.Fatal(err)
	}
	eng := &ppd.Engine{DB: db, Method: ppd.MethodAuto}
	res, err := eng.Eval(ppd.MustParse(
		`P(_, _; c1; c2), C(c1, _, "F", _, _, _), C(c2, _, "M", _, _, _)`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Prob <= 0 || res.Prob > 1 {
		t.Fatalf("reloaded DB evaluated to %v", res.Prob)
	}
	if len(res.PerSession) != 3 {
		t.Fatalf("reloaded DB has %d sessions, want 3", len(res.PerSession))
	}
}

func TestGeneratePollsDeterministic(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	var buf bytes.Buffer
	args := []string{"-dataset", "polls", "-candidates", "8", "-voters", "12", "-seed", "5"}
	if err := run(append(args, "-out", dirA), &buf); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-out", dirB), &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"C.csv", "V.csv", "P.json"} {
		a, err := os.ReadFile(filepath.Join(dirA, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between identical-seed runs", name)
		}
	}
}
