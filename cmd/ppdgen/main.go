// Command ppdgen generates the paper's experimental datasets and persists
// them to disk: every ordinary relation as CSV, every preference relation as
// JSON (one Mallows model per session). The written files round-trip through
// the loaders of the library (LoadRelationCSV, LoadPrefJSON), so a generated
// directory is a self-contained RIM-PPD instance.
//
// With -o the dataset is instead (or additionally) written as one columnar
// snapshot file in the .ppds format of internal/store, which hardqd
// -snapshot-dir mmaps on cold start without re-running the generator.
//
// Usage examples:
//
//	ppdgen -dataset figure1 -out /tmp/figure1
//	ppdgen -dataset polls -candidates 20 -voters 200 -seed 7 -out /tmp/polls
//	ppdgen -dataset movielens -movies 120 -out /tmp/ml
//	ppdgen -dataset crowdrank -workers 1000 -out /tmp/cr
//	ppdgen -dataset polls -voters 500 -o /var/lib/hardqd/default.ppds
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"probpref/internal/dataset"
	"probpref/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ppdgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ppdgen", flag.ContinueOnError)
	var (
		ds      = fs.String("dataset", "figure1", "dataset: figure1 | polls | movielens | crowdrank")
		outDir  = fs.String("out", "", "output directory for CSV/JSON files")
		snap    = fs.String("o", "", "write the dataset as one columnar snapshot file (<name>.ppds, see internal/store)")
		parts   = fs.Int("partitions", 0, "with -o: split the snapshot into N contiguous session-range partition files (\"<name>--p<i>.ppds\", the naming hardqd -shard and the cluster coordinator expect) instead of one whole-model file")
		seed    = fs.Int64("seed", 1, "generator seed")
		cands   = fs.Int("candidates", 20, "polls: number of candidates")
		voters  = fs.Int("voters", 100, "polls: number of voters")
		movies  = fs.Int("movies", 120, "movielens: catalog size")
		workers = fs.Int("workers", 500, "crowdrank: number of workers")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outDir == "" && *snap == "" {
		return fmt.Errorf("-out directory or -o snapshot file is required")
	}

	db, demo, err := dataset.Build(dataset.BuildConfig{
		Name: *ds, Seed: *seed, Candidates: *cands, Voters: *voters, Movies: *movies, Workers: *workers,
	})
	if err != nil {
		return err
	}
	if *parts < 0 {
		return fmt.Errorf("-partitions must be non-negative, got %d", *parts)
	}
	if *parts > 0 && *snap == "" {
		return fmt.Errorf("-partitions requires -o (partition files are snapshot files)")
	}
	if *snap != "" {
		if dir := filepath.Dir(*snap); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
		sessions := 0
		for _, p := range db.Prefs {
			sessions += p.Sessions.Len()
		}
		if *parts > 0 {
			base := strings.TrimSuffix(*snap, ".ppds")
			for i := 0; i < *parts; i++ {
				path := fmt.Sprintf("%s--p%d.ppds", base, i)
				if err := store.WritePartitionFile(path, db, demo, i, *parts); err != nil {
					return err
				}
				fmt.Fprintf(out, "wrote %s (partition %d/%d)\n", path, i, *parts)
			}
			fmt.Fprintf(out, "split %d sessions over %d partitions\n", sessions, *parts)
		} else {
			if err := store.WriteFile(*snap, db, demo); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s (%d items, %d sessions)\n", *snap, db.M(), sessions)
		}
		if *outDir == "" {
			return nil
		}
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	var relNames []string
	for name := range db.Relations {
		relNames = append(relNames, name)
	}
	sort.Strings(relNames)
	for _, name := range relNames {
		path := filepath.Join(*outDir, name+".csv")
		if err := writeFile(path, db.Relations[name].WriteCSV); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d tuples)\n", path, len(db.Relations[name].Tuples))
	}

	var prefNames []string
	for name := range db.Prefs {
		prefNames = append(prefNames, name)
	}
	sort.Strings(prefNames)
	for _, name := range prefNames {
		path := filepath.Join(*outDir, name+".json")
		if err := writeFile(path, db.Prefs[name].WriteJSON); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d sessions)\n", path, db.Prefs[name].Sessions.Len())
	}
	fmt.Fprintf(out, "dataset %s: %d items, %d o-relations, %d p-relations\n",
		*ds, db.M(), len(db.Relations), len(db.Prefs))
	return nil
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}
