// Command ppdgen generates the paper's experimental datasets and persists
// them to disk: every ordinary relation as CSV, every preference relation as
// JSON (one Mallows model per session). The written files round-trip through
// the loaders of the library (LoadRelationCSV, LoadPrefJSON), so a generated
// directory is a self-contained RIM-PPD instance.
//
// Usage examples:
//
//	ppdgen -dataset figure1 -out /tmp/figure1
//	ppdgen -dataset polls -candidates 20 -voters 200 -seed 7 -out /tmp/polls
//	ppdgen -dataset movielens -movies 120 -out /tmp/ml
//	ppdgen -dataset crowdrank -workers 1000 -out /tmp/cr
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"probpref/internal/dataset"
	"probpref/internal/ppd"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ppdgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ppdgen", flag.ContinueOnError)
	var (
		ds      = fs.String("dataset", "figure1", "dataset: figure1 | polls | movielens | crowdrank")
		outDir  = fs.String("out", "", "output directory (required)")
		seed    = fs.Int64("seed", 1, "generator seed")
		cands   = fs.Int("candidates", 20, "polls: number of candidates")
		voters  = fs.Int("voters", 100, "polls: number of voters")
		movies  = fs.Int("movies", 120, "movielens: catalog size")
		workers = fs.Int("workers", 500, "crowdrank: number of workers")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outDir == "" {
		return fmt.Errorf("-out directory is required")
	}

	db, err := buildDB(*ds, *seed, *cands, *voters, *movies, *workers)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	var relNames []string
	for name := range db.Relations {
		relNames = append(relNames, name)
	}
	sort.Strings(relNames)
	for _, name := range relNames {
		path := filepath.Join(*outDir, name+".csv")
		if err := writeFile(path, db.Relations[name].WriteCSV); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d tuples)\n", path, len(db.Relations[name].Tuples))
	}

	var prefNames []string
	for name := range db.Prefs {
		prefNames = append(prefNames, name)
	}
	sort.Strings(prefNames)
	for _, name := range prefNames {
		path := filepath.Join(*outDir, name+".json")
		if err := writeFile(path, db.Prefs[name].WriteJSON); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d sessions)\n", path, len(db.Prefs[name].Sessions))
	}
	fmt.Fprintf(out, "dataset %s: %d items, %d o-relations, %d p-relations\n",
		*ds, db.M(), len(db.Relations), len(db.Prefs))
	return nil
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}

func buildDB(ds string, seed int64, cands, voters, movies, workers int) (*ppd.DB, error) {
	switch ds {
	case "figure1":
		return dataset.Figure1()
	case "polls":
		return dataset.Polls(dataset.PollsConfig{Candidates: cands, Voters: voters, Seed: seed})
	case "movielens":
		return dataset.MovieLens(dataset.MovieLensConfig{Movies: movies, Seed: seed})
	case "crowdrank":
		return dataset.CrowdRank(dataset.CrowdRankConfig{Workers: workers, Seed: seed})
	default:
		return nil, fmt.Errorf("unknown dataset %q", ds)
	}
}
