package probpref_test

import (
	"context"
	"fmt"
	"log"

	"probpref"
)

// ExampleEngine_Do answers two query kinds through the unified request
// API: one typed Request per query, one entry point for every kind, and
// streaming iteration over the top-k rows.
func ExampleEngine_Do() {
	db, err := probpref.Figure1()
	if err != nil {
		log.Fatal(err)
	}
	eng := &probpref.Engine{DB: db, Method: probpref.MethodAuto}
	ctx := context.Background()

	resp, err := eng.Do(ctx, &probpref.Request{
		Kind:  probpref.KindBool,
		Query: `P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pr(Q|D) = %.4f, count(Q) = %.4f\n", resp.Prob, resp.Count)

	top, err := eng.Do(ctx, &probpref.Request{
		Kind:  probpref.KindTopK,
		Query: `P(_, _; c1; c2), C(c1, _, F, _, _, _), C(c2, _, M, _, _, _)`,
		K:     2, BoundEdges: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	for sp, err := range top.Sessions(ctx) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %.4f\n", sp.Session.Key[0], sp.Prob)
	}
	// Output:
	// Pr(Q|D) = 0.9991, count(Q) = 2.2086
	// Ann: 0.9809
	// Dave: 0.9333
}

// ExampleRequest_Compile shows the up-front validation of the unified
// request shape: contradictory fields fail with enumerated-value errors
// before any evaluation work happens.
func ExampleRequest_Compile() {
	req := &probpref.Request{Kind: probpref.KindBool, Query: `P(_, _; a; b)`, K: 3}
	if _, err := req.Compile(); err != nil {
		fmt.Println(err)
	}
	if _, err := probpref.ParseKind("topsecret"); err != nil {
		fmt.Println(err)
	}
	// Output:
	// ppd: K is only valid for kind topk, not bool
	// unknown kind "topsecret" (valid: bool | count | topk | aggregate | countdist | consensus)
}
